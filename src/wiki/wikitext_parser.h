// Wikitext parser: turns MediaWiki markup into the Article data model.
//
// Handles the constructs that matter for infobox extraction:
//   {{Infobox type | attr = value | ... }}   (brace-nesting aware)
//   [[Target]] and [[Target|anchor]] wikilinks
//   [[Category:...]] (and localized prefixes) category links
//   [[xx:Title]] cross-language links
//   <!-- comments -->, <ref>...</ref>, <br/>, bold/italic quotes,
//   nested templates inside attribute values ({{ubl|a|b}}, {{Plainlist}}, ...)
//
// This is not a full MediaWiki grammar; it is the subset exercised by
// infobox pages, sufficient for the paper's pipeline and tested against
// tricky nesting in tests/wiki_parser_test.cc.

#ifndef WIKIMATCH_WIKI_WIKITEXT_PARSER_H_
#define WIKIMATCH_WIKI_WIKITEXT_PARSER_H_

#include <string>
#include <string_view>
#include <vector>

#include "util/result.h"
#include "wiki/article.h"

namespace wikimatch {
namespace wiki {

/// \brief Parser configuration.
struct WikitextParserOptions {
  /// Language codes recognized as cross-language link prefixes.
  std::vector<std::string> language_codes = {"en", "pt", "vi", "de", "fr",
                                             "es", "nl", "it", "ja", "zh"};
  /// Category namespace names (normalized lowercase), per language.
  std::vector<std::string> category_prefixes = {"category", "categoria",
                                                "thể loại"};
  /// Template-name heads that announce an infobox (normalized lowercase).
  std::vector<std::string> infobox_heads = {"infobox", "info", "hộp thông tin"};
};

/// \brief Stateless parser; one instance can parse many articles.
class WikitextParser {
 public:
  explicit WikitextParser(WikitextParserOptions options = {});

  /// \brief Parses a full article source into the data model.
  ///
  /// Never fails on malformed markup — unparseable constructs degrade to
  /// plain text — but returns InvalidArgument for an empty title/language.
  util::Result<Article> ParseArticle(std::string_view title,
                                     std::string_view language,
                                     std::string_view wikitext) const;

  /// \brief Removes <!-- ... --> comments (unterminated comment runs to
  /// end of input, as MediaWiki does).
  static std::string StripComments(std::string_view s);

  /// \brief Removes <ref ...>...</ref> and self-closing <ref .../>.
  static std::string StripRefs(std::string_view s);

  /// \brief Parses the body of a template believed to be an infobox.
  ///
  /// `body` is the text between "{{" and the matching "}}". Returns
  /// ParseError when the body has no recognizable template name.
  util::Result<Infobox> ParseInfoboxBody(std::string_view body) const;

  /// \brief Renders wikitext `value` to plain text and collects wikilinks.
  ///
  /// Links become their anchors in the text; nested templates render as
  /// their positional arguments joined with ", "; HTML tags are dropped.
  AttributeValue ParseValue(std::string_view value) const;

 private:
  /// True if `name` (normalized) announces an infobox template.
  bool IsInfoboxTemplateName(const std::string& name) const;

  /// Splits template body on top-level '|' (ignoring '|' nested in
  /// [[...]] or {{...}}).
  static std::vector<std::string_view> SplitTopLevel(std::string_view body);

  WikitextParserOptions options_;
};

/// \brief Locates the first top-level "{{...}}" starting at or after `from`;
/// returns true and sets [begin, end) byte offsets of the template including
/// braces. Nesting-aware.
bool FindTemplate(std::string_view s, size_t from, size_t* begin, size_t* end);

}  // namespace wiki
}  // namespace wikimatch

#endif  // WIKIMATCH_WIKI_WIKITEXT_PARSER_H_
