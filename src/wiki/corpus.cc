#include "wiki/corpus.h"

#include <algorithm>

#include "util/logging.h"
#include "util/thread_pool.h"

namespace wikimatch {
namespace wiki {

const std::vector<ArticleId> Corpus::kEmpty;

util::Result<ArticleId> Corpus::AddArticle(Article article) {
  auto key = std::make_pair(article.language, article.title);
  if (title_index_.count(key) > 0) {
    return util::Status::AlreadyExists(article.language + ":" + article.title);
  }
  ArticleId id = static_cast<ArticleId>(articles_.size());
  title_index_.emplace(std::move(key), id);
  language_index_[article.language].push_back(id);
  articles_.push_back(std::move(article));
  finalized_ = false;
  return id;
}

Corpus Corpus::ParallelCopy(const Corpus& base, size_t num_threads) {
  Corpus out;
  const size_t n = base.articles_.size();
  out.articles_.resize(n);
  const size_t chunks = num_threads <= 1 ? 1 : num_threads * 4;
  const size_t step = (n + chunks - 1) / chunks;
  util::thread_pool_for(chunks, num_threads, [&](size_t c) {
    const size_t begin = c * step;
    const size_t end = std::min(n, begin + step);
    for (size_t i = begin; i < end; ++i) {
      out.articles_[i] = base.articles_[i];
    }
  });
  out.title_index_ = base.title_index_;
  out.language_index_ = base.language_index_;
  out.type_index_ = base.type_index_;
  out.finalized_ = base.finalized_;
  return out;
}

util::Status Corpus::ReplaceArticle(ArticleId id, Article article) {
  if (id >= articles_.size()) {
    return util::Status::InvalidArgument("ReplaceArticle: id out of range");
  }
  if (articles_[id].language != article.language ||
      articles_[id].title != article.title) {
    return util::Status::InvalidArgument(
        "ReplaceArticle: replacement for " + articles_[id].language + ":" +
        articles_[id].title + " carries key " + article.language + ":" +
        article.title);
  }
  articles_[id] = std::move(article);
  finalized_ = false;
  return util::Status::OK();
}

void Corpus::EraseArticles(std::vector<ArticleId> ids) {
  if (ids.empty()) return;
  std::sort(ids.begin(), ids.end());
  ids.erase(std::unique(ids.begin(), ids.end()), ids.end());
  for (ArticleId id : ids) {
    const Article& a = articles_[id];
    title_index_.erase({a.language, a.title});
  }
  // Compact the article vector, preserving relative order.
  size_t write = 0;
  size_t next_removed = 0;
  for (size_t read = 0; read < articles_.size(); ++read) {
    if (next_removed < ids.size() && ids[next_removed] == read) {
      ++next_removed;
      continue;
    }
    if (write != read) articles_[write] = std::move(articles_[read]);
    ++write;
  }
  articles_.resize(write);
  // Every surviving id shifts down by the number of removed ids below it.
  auto shifted = [&](ArticleId id) {
    return id - static_cast<ArticleId>(
                    std::upper_bound(ids.begin(), ids.end(), id) -
                    ids.begin());
  };
  for (auto& [key, id] : title_index_) id = shifted(id);
  for (auto& [language, list] : language_index_) {
    size_t w = 0;
    for (ArticleId id : list) {
      if (std::binary_search(ids.begin(), ids.end(), id)) continue;
      list[w++] = shifted(id);
    }
    list.resize(w);
  }
  // Stale ids must not be served while un-finalized; Finalize rebuilds.
  type_index_.clear();
  finalized_ = false;
}

void Corpus::PopArticles(size_t n) {
  n = std::min(n, articles_.size());
  for (size_t k = 0; k < n; ++k) {
    const ArticleId id = static_cast<ArticleId>(articles_.size() - 1 - k);
    const Article& a = articles_[id];
    title_index_.erase({a.language, a.title});
    // Language lists are ascending by id, so the popped article is the
    // last entry of its language's list.
    auto it = language_index_.find(a.language);
    it->second.pop_back();
    if (it->second.empty()) language_index_.erase(it);
  }
  articles_.resize(articles_.size() - n);
  type_index_.clear();
  finalized_ = false;
}

void Corpus::RestoreArticles(
    std::vector<std::pair<ArticleId, Article>> originals) {
  if (originals.empty()) return;
  std::sort(originals.begin(), originals.end(),
            [](const auto& x, const auto& y) { return x.first < y.first; });
  // Merge survivors and restored records back into original positions.
  std::vector<Article> merged;
  merged.reserve(articles_.size() + originals.size());
  size_t next_restored = 0;
  size_t next_survivor = 0;
  while (merged.size() < articles_.size() + originals.size()) {
    const ArticleId pos = static_cast<ArticleId>(merged.size());
    if (next_restored < originals.size() &&
        originals[next_restored].first == pos) {
      merged.push_back(std::move(originals[next_restored].second));
      ++next_restored;
    } else {
      merged.push_back(std::move(articles_[next_survivor++]));
    }
  }
  articles_ = std::move(merged);
  // Survivor id c moves back up to c + (#restored ids at or below the
  // shifted position) — the inverse of EraseArticles' downshift.
  auto shifted = [&](ArticleId c) {
    size_t k = 0;
    ArticleId o = c;
    while (k < originals.size() && originals[k].first <= o) {
      ++k;
      o = c + static_cast<ArticleId>(k);
    }
    return o;
  };
  for (auto& [key, id] : title_index_) id = shifted(id);
  for (auto& [language, list] : language_index_) {
    for (ArticleId& id : list) id = shifted(id);
  }
  // Index the restored records; language lists stay ascending by id.
  for (const auto& original : originals) {
    const ArticleId id = original.first;
    const Article& a = articles_[id];
    title_index_.emplace(std::make_pair(a.language, a.title), id);
    auto& list = language_index_[a.language];
    list.insert(std::lower_bound(list.begin(), list.end(), id), id);
  }
  type_index_.clear();
  finalized_ = false;
}

util::Result<size_t> Corpus::IngestDump(const std::vector<DumpPage>& pages,
                                        const std::string& language,
                                        const WikitextParser& parser) {
  size_t added = 0;
  for (const auto& page : pages) {
    if (page.ns != 0) continue;  // Redirects are kept: links resolve
                                 // through them.
    auto parsed = parser.ParseArticle(page.title, language, page.text);
    if (!parsed.ok()) {
      WIKIMATCH_LOG(Warning) << "skipping page '" << page.title
                             << "': " << parsed.status().ToString();
      continue;
    }
    auto id = AddArticle(std::move(parsed).ValueOrDie());
    if (!id.ok()) {
      WIKIMATCH_LOG(Warning) << "skipping duplicate page '" << page.title
                             << "'";
      continue;
    }
    ++added;
  }
  return added;
}

void Corpus::Finalize(FinalizeReport* report) {
  if (finalized_) return;

  // 1. Entity types from infobox template types.
  for (size_t i = 0; i < articles_.size(); ++i) {
    Article& article = articles_[i];
    if (article.entity_type.empty() && article.infobox.has_value()) {
      article.entity_type = article.infobox->template_type;
      if (report != nullptr && !article.entity_type.empty()) {
        report->entity_type_derived.push_back(static_cast<ArticleId>(i));
      }
    }
  }

  // 2. Symmetrize cross-language links.
  for (size_t i = 0; i < articles_.size(); ++i) {
    const Article& a = articles_[i];
    for (const auto& [lang, title] : a.cross_language_links) {
      ArticleId other = FindByTitle(lang, title);
      if (other == kInvalidArticle) continue;
      Article& b = articles_[other];
      auto it = b.cross_language_links.find(a.language);
      if (it == b.cross_language_links.end()) {
        b.cross_language_links[a.language] = a.title;
        if (report != nullptr) {
          report->backlinks_added.push_back({other, a.language, a.title});
        }
      }
    }
  }

  // 3. Type index (articles with infoboxes only — the matching unit).
  type_index_.clear();
  for (size_t i = 0; i < articles_.size(); ++i) {
    const Article& a = articles_[i];
    if (!a.infobox.has_value() || a.entity_type.empty()) continue;
    type_index_[{a.language, a.entity_type}].push_back(
        static_cast<ArticleId>(i));
  }

  finalized_ = true;
}

ArticleId Corpus::FindExactTitle(const std::string& language,
                                 const std::string& title) const {
  auto it = title_index_.find({language, title});
  return it == title_index_.end() ? kInvalidArticle : it->second;
}

ArticleId Corpus::FindByTitle(const std::string& language,
                              const std::string& title) const {
  ArticleId id = FindExactTitle(language, title);
  // Follow redirect chains (bounded; real wikis forbid double redirects,
  // we tolerate a short chain and bail on cycles).
  for (int depth = 0; depth < 4 && id != kInvalidArticle; ++depth) {
    const Article& article = articles_[id];
    if (!article.IsRedirect()) return id;
    id = FindExactTitle(language, article.redirect_to);
  }
  return id != kInvalidArticle && !articles_[id].IsRedirect()
             ? id
             : kInvalidArticle;
}

const std::vector<ArticleId>& Corpus::ArticlesInLanguage(
    const std::string& language) const {
  auto it = language_index_.find(language);
  return it == language_index_.end() ? kEmpty : it->second;
}

const std::vector<ArticleId>& Corpus::ArticlesOfType(
    const std::string& language, const std::string& type) const {
  auto it = type_index_.find({language, type});
  return it == type_index_.end() ? kEmpty : it->second;
}

std::vector<std::string> Corpus::Languages() const {
  std::vector<std::string> out;
  out.reserve(language_index_.size());
  for (const auto& [lang, ids] : language_index_) out.push_back(lang);
  return out;
}

std::vector<std::string> Corpus::TypesIn(const std::string& language) const {
  std::vector<std::string> out;
  for (const auto& [key, ids] : type_index_) {
    if (key.first == language) out.push_back(key.second);
  }
  return out;
}

ArticleId Corpus::CrossLanguageTarget(ArticleId id,
                                      const std::string& language) const {
  const Article& a = articles_[id];
  auto it = a.cross_language_links.find(language);
  if (it == a.cross_language_links.end()) return kInvalidArticle;
  return FindByTitle(language, it->second);
}

bool Corpus::SameEntity(ArticleId a, ArticleId b) const {
  if (a == b) return true;
  const Article& aa = articles_[a];
  const Article& ab = articles_[b];
  if (aa.language == ab.language) return false;
  auto it = aa.cross_language_links.find(ab.language);
  return it != aa.cross_language_links.end() && it->second == ab.title;
}

size_t Corpus::InfoboxCount(const std::string& language) const {
  size_t n = 0;
  for (ArticleId id : ArticlesInLanguage(language)) {
    if (articles_[id].infobox.has_value()) ++n;
  }
  return n;
}

}  // namespace wiki
}  // namespace wikimatch
