#include "wiki/corpus.h"

#include <algorithm>

#include "util/logging.h"

namespace wikimatch {
namespace wiki {

const std::vector<ArticleId> Corpus::kEmpty;

util::Result<ArticleId> Corpus::AddArticle(Article article) {
  auto key = std::make_pair(article.language, article.title);
  if (title_index_.count(key) > 0) {
    return util::Status::AlreadyExists(article.language + ":" + article.title);
  }
  ArticleId id = static_cast<ArticleId>(articles_.size());
  title_index_.emplace(std::move(key), id);
  language_index_[article.language].push_back(id);
  articles_.push_back(std::move(article));
  finalized_ = false;
  return id;
}

util::Result<size_t> Corpus::IngestDump(const std::vector<DumpPage>& pages,
                                        const std::string& language,
                                        const WikitextParser& parser) {
  size_t added = 0;
  for (const auto& page : pages) {
    if (page.ns != 0) continue;  // Redirects are kept: links resolve
                                 // through them.
    auto parsed = parser.ParseArticle(page.title, language, page.text);
    if (!parsed.ok()) {
      WIKIMATCH_LOG(Warning) << "skipping page '" << page.title
                             << "': " << parsed.status().ToString();
      continue;
    }
    auto id = AddArticle(std::move(parsed).ValueOrDie());
    if (!id.ok()) {
      WIKIMATCH_LOG(Warning) << "skipping duplicate page '" << page.title
                             << "'";
      continue;
    }
    ++added;
  }
  return added;
}

void Corpus::Finalize() {
  if (finalized_) return;

  // 1. Entity types from infobox template types.
  for (auto& article : articles_) {
    if (article.entity_type.empty() && article.infobox.has_value()) {
      article.entity_type = article.infobox->template_type;
    }
  }

  // 2. Symmetrize cross-language links.
  for (size_t i = 0; i < articles_.size(); ++i) {
    const Article& a = articles_[i];
    for (const auto& [lang, title] : a.cross_language_links) {
      ArticleId other = FindByTitle(lang, title);
      if (other == kInvalidArticle) continue;
      Article& b = articles_[other];
      auto it = b.cross_language_links.find(a.language);
      if (it == b.cross_language_links.end()) {
        b.cross_language_links[a.language] = a.title;
      }
    }
  }

  // 3. Type index (articles with infoboxes only — the matching unit).
  type_index_.clear();
  for (size_t i = 0; i < articles_.size(); ++i) {
    const Article& a = articles_[i];
    if (!a.infobox.has_value() || a.entity_type.empty()) continue;
    type_index_[{a.language, a.entity_type}].push_back(
        static_cast<ArticleId>(i));
  }

  finalized_ = true;
}

ArticleId Corpus::FindExactTitle(const std::string& language,
                                 const std::string& title) const {
  auto it = title_index_.find({language, title});
  return it == title_index_.end() ? kInvalidArticle : it->second;
}

ArticleId Corpus::FindByTitle(const std::string& language,
                              const std::string& title) const {
  ArticleId id = FindExactTitle(language, title);
  // Follow redirect chains (bounded; real wikis forbid double redirects,
  // we tolerate a short chain and bail on cycles).
  for (int depth = 0; depth < 4 && id != kInvalidArticle; ++depth) {
    const Article& article = articles_[id];
    if (!article.IsRedirect()) return id;
    id = FindExactTitle(language, article.redirect_to);
  }
  return id != kInvalidArticle && !articles_[id].IsRedirect()
             ? id
             : kInvalidArticle;
}

const std::vector<ArticleId>& Corpus::ArticlesInLanguage(
    const std::string& language) const {
  auto it = language_index_.find(language);
  return it == language_index_.end() ? kEmpty : it->second;
}

const std::vector<ArticleId>& Corpus::ArticlesOfType(
    const std::string& language, const std::string& type) const {
  auto it = type_index_.find({language, type});
  return it == type_index_.end() ? kEmpty : it->second;
}

std::vector<std::string> Corpus::Languages() const {
  std::vector<std::string> out;
  out.reserve(language_index_.size());
  for (const auto& [lang, ids] : language_index_) out.push_back(lang);
  return out;
}

std::vector<std::string> Corpus::TypesIn(const std::string& language) const {
  std::vector<std::string> out;
  for (const auto& [key, ids] : type_index_) {
    if (key.first == language) out.push_back(key.second);
  }
  return out;
}

ArticleId Corpus::CrossLanguageTarget(ArticleId id,
                                      const std::string& language) const {
  const Article& a = articles_[id];
  auto it = a.cross_language_links.find(language);
  if (it == a.cross_language_links.end()) return kInvalidArticle;
  return FindByTitle(language, it->second);
}

bool Corpus::SameEntity(ArticleId a, ArticleId b) const {
  if (a == b) return true;
  const Article& aa = articles_[a];
  const Article& ab = articles_[b];
  if (aa.language == ab.language) return false;
  auto it = aa.cross_language_links.find(ab.language);
  return it != aa.cross_language_links.end() && it->second == ab.title;
}

size_t Corpus::InfoboxCount(const std::string& language) const {
  size_t n = 0;
  for (ArticleId id : ArticlesInLanguage(language)) {
    if (articles_[id].infobox.has_value()) ++n;
  }
  return n;
}

}  // namespace wiki
}  // namespace wikimatch
