// Data model for Wikipedia articles, infoboxes, hyperlinks, and
// cross-language links (Section 2 of the paper).

#ifndef WIKIMATCH_WIKI_ARTICLE_H_
#define WIKIMATCH_WIKI_ARTICLE_H_

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace wikimatch {
namespace wiki {

/// \brief Dense id of an article within a Corpus.
using ArticleId = uint32_t;
inline constexpr ArticleId kInvalidArticle = 0xFFFFFFFFu;

/// \brief A wikilink inside an attribute value: [[target|anchor]].
struct Hyperlink {
  /// Normalized target title (NormalizeTitle form).
  std::string target;
  /// Display text; equals the raw target when no pipe was present.
  std::string anchor;

  bool operator==(const Hyperlink& o) const {
    return target == o.target && anchor == o.anchor;
  }
};

/// \brief The value side of an infobox attribute-value pair.
struct AttributeValue {
  /// Raw wikitext of the value, unmodified.
  std::string raw;
  /// Plain text: links replaced by their anchors, markup stripped,
  /// whitespace collapsed.
  std::string text;
  /// All wikilinks found in the value, in order.
  std::vector<Hyperlink> links;
};

/// \brief Structured record summarizing the article's entity: an ordered
/// list of attribute-value pairs plus the template it was instantiated from.
struct Infobox {
  /// Template name with the "Infobox" head removed and normalized, e.g.
  /// "film". Empty when the template had no recognizable head.
  std::string template_type;
  /// Full raw template name, e.g. "Infobox film".
  std::string template_name;
  /// Attribute-value pairs; names are normalized (NormalizeAttributeName).
  std::vector<std::pair<std::string, AttributeValue>> attributes;

  /// \brief The schema S_I: attribute names in order, duplicates removed.
  std::vector<std::string> Schema() const;

  /// \brief First value for `name`, or nullptr.
  const AttributeValue* Find(const std::string& name) const;
};

/// \brief One Wikipedia article in one language.
struct Article {
  /// Normalized title.
  std::string title;
  /// Language code ("en", "pt", "vi", ...).
  std::string language;
  /// The article's infobox, if it has one.
  std::optional<Infobox> infobox;
  /// Category names (without the namespace prefix), normalized.
  std::vector<std::string> categories;
  /// Cross-language links: language code -> normalized title of the article
  /// describing the same entity in that language.
  std::map<std::string, std::string> cross_language_links;
  /// Entity type, resolved by the corpus (from the infobox template by
  /// default). Empty when unknown.
  std::string entity_type;
  /// Non-empty when the page is a redirect: the normalized target title.
  std::string redirect_to;

  bool IsRedirect() const { return !redirect_to.empty(); }
};

}  // namespace wiki
}  // namespace wikimatch

#endif  // WIKIMATCH_WIKI_ARTICLE_H_
