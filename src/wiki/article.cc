#include "wiki/article.h"

#include <set>

namespace wikimatch {
namespace wiki {

std::vector<std::string> Infobox::Schema() const {
  std::vector<std::string> out;
  std::set<std::string> seen;
  for (const auto& [name, value] : attributes) {
    if (seen.insert(name).second) out.push_back(name);
  }
  return out;
}

const AttributeValue* Infobox::Find(const std::string& name) const {
  for (const auto& [n, v] : attributes) {
    if (n == name) return &v;
  }
  return nullptr;
}

}  // namespace wiki
}  // namespace wikimatch
