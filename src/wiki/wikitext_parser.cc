#include "wiki/wikitext_parser.h"

#include <algorithm>
#include <cctype>

#include "text/normalize.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace wikimatch {
namespace wiki {

namespace {

// Splits "prefix:rest" at the first colon; returns true when a colon exists.
bool SplitNamespace(std::string_view s, std::string* prefix,
                    std::string* rest) {
  size_t colon = s.find(':');
  if (colon == std::string_view::npos) return false;
  *prefix = text::NormalizeTitle(s.substr(0, colon));
  *rest = std::string(util::StripAsciiWhitespace(s.substr(colon + 1)));
  return true;
}

// Removes HTML-ish tags (<br/>, <small>, </span>, ...) replacing them with a
// space so adjacent words don't merge. Leaves bare '<' that don't open a tag.
std::string StripHtmlTags(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '<') {
      size_t close = s.find('>', i + 1);
      // Heuristic: treat as a tag only if it closes and looks tag-like.
      if (close != std::string_view::npos && close - i <= 64) {
        out.push_back(' ');
        i = close + 1;
        continue;
      }
    }
    out.push_back(s[i]);
    ++i;
  }
  return out;
}

// Removes '' and ''' emphasis markers.
std::string StripQuotes(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '\'' && i + 1 < s.size() && s[i + 1] == '\'') {
      size_t run = 0;
      while (i + run < s.size() && s[i + run] == '\'') ++run;
      i += run;
      continue;
    }
    out.push_back(s[i]);
    ++i;
  }
  return out;
}

}  // namespace

bool FindTemplate(std::string_view s, size_t from, size_t* begin,
                  size_t* end) {
  size_t open = s.find("{{", from);
  if (open == std::string_view::npos) return false;
  int depth = 0;
  size_t i = open;
  while (i + 1 < s.size() + 1 && i < s.size()) {
    if (i + 1 < s.size() && s[i] == '{' && s[i + 1] == '{') {
      depth += 1;
      i += 2;
      continue;
    }
    if (i + 1 < s.size() && s[i] == '}' && s[i + 1] == '}') {
      depth -= 1;
      i += 2;
      if (depth == 0) {
        *begin = open;
        *end = i;
        return true;
      }
      continue;
    }
    ++i;
  }
  return false;  // Unbalanced braces: no complete template.
}

WikitextParser::WikitextParser(WikitextParserOptions options)
    : options_(std::move(options)) {}

std::string WikitextParser::StripComments(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s.substr(i, 4) == "<!--") {
      size_t close = s.find("-->", i + 4);
      if (close == std::string_view::npos) break;  // Runs to end of input.
      i = close + 3;
      continue;
    }
    out.push_back(s[i]);
    ++i;
  }
  return out;
}

std::string WikitextParser::StripRefs(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t i = 0;
  while (i < s.size()) {
    if (s.substr(i, 4) == "<ref") {
      // Self-closing <ref ... /> or paired <ref ...>...</ref>.
      size_t tag_close = s.find('>', i);
      if (tag_close == std::string_view::npos) break;
      if (tag_close > i && s[tag_close - 1] == '/') {
        i = tag_close + 1;
        continue;
      }
      size_t end = s.find("</ref>", tag_close);
      if (end == std::string_view::npos) {
        i = tag_close + 1;  // Unterminated: drop just the open tag.
        continue;
      }
      i = end + 6;
      continue;
    }
    out.push_back(s[i]);
    ++i;
  }
  return out;
}

std::vector<std::string_view> WikitextParser::SplitTopLevel(
    std::string_view body) {
  std::vector<std::string_view> parts;
  int brace_depth = 0;
  int bracket_depth = 0;
  size_t start = 0;
  size_t i = 0;
  while (i < body.size()) {
    if (i + 1 < body.size() && body[i] == '{' && body[i + 1] == '{') {
      brace_depth++;
      i += 2;
      continue;
    }
    if (i + 1 < body.size() && body[i] == '}' && body[i + 1] == '}') {
      if (brace_depth > 0) brace_depth--;
      i += 2;
      continue;
    }
    if (i + 1 < body.size() && body[i] == '[' && body[i + 1] == '[') {
      bracket_depth++;
      i += 2;
      continue;
    }
    if (i + 1 < body.size() && body[i] == ']' && body[i + 1] == ']') {
      if (bracket_depth > 0) bracket_depth--;
      i += 2;
      continue;
    }
    if (body[i] == '|' && brace_depth == 0 && bracket_depth == 0) {
      parts.push_back(body.substr(start, i - start));
      start = i + 1;
    }
    ++i;
  }
  parts.push_back(body.substr(start));
  return parts;
}

bool WikitextParser::IsInfoboxTemplateName(const std::string& name) const {
  for (const auto& head : options_.infobox_heads) {
    if (util::StartsWith(name, head)) return true;
  }
  return false;
}

AttributeValue WikitextParser::ParseValue(std::string_view value) const {
  AttributeValue out;
  out.raw = std::string(util::StripAsciiWhitespace(value));

  // Render to plain text while collecting links. Process iteratively.
  std::string work = out.raw;

  // Flatten nested templates: {{name|a|b}} -> "a, b" (positional args only).
  // Repeat until no templates remain (bounded to avoid pathological input).
  for (int round = 0; round < 8; ++round) {
    size_t begin = 0;
    size_t end = 0;
    if (!FindTemplate(work, 0, &begin, &end)) break;
    std::string_view inner =
        std::string_view(work).substr(begin + 2, end - begin - 4);
    std::vector<std::string_view> parts = SplitTopLevel(inner);
    std::vector<std::string> args;
    for (size_t p = 1; p < parts.size(); ++p) {
      std::string_view part = util::StripAsciiWhitespace(parts[p]);
      // Skip named parameters of formatting templates; keep positional.
      size_t eq = part.find('=');
      bool named = false;
      if (eq != std::string_view::npos) {
        // Named iff the key side is a simple word (no brackets).
        std::string_view key = util::StripAsciiWhitespace(part.substr(0, eq));
        named = !key.empty() &&
                key.find('[') == std::string_view::npos &&
                key.find('{') == std::string_view::npos;
      }
      if (!named && !part.empty()) args.emplace_back(part);
    }
    std::string replacement = util::Join(args, ", ");
    work = work.substr(0, begin) + replacement + work.substr(end);
  }

  // Extract links and build plain text.
  std::string plain;
  plain.reserve(work.size());
  size_t i = 0;
  while (i < work.size()) {
    if (i + 1 < work.size() && work[i] == '[' && work[i + 1] == '[') {
      size_t close = work.find("]]", i + 2);
      if (close != std::string::npos) {
        std::string_view link_body =
            std::string_view(work).substr(i + 2, close - i - 2);
        size_t pipe = link_body.find('|');
        std::string_view target_raw =
            pipe == std::string_view::npos ? link_body
                                           : link_body.substr(0, pipe);
        std::string_view anchor_raw =
            pipe == std::string_view::npos ? link_body
                                           : link_body.substr(pipe + 1);
        Hyperlink link;
        link.target = text::NormalizeTitle(target_raw);
        link.anchor =
            std::string(util::StripAsciiWhitespace(anchor_raw));
        if (!link.target.empty()) out.links.push_back(link);
        plain.append(link.anchor);
        i = close + 2;
        continue;
      }
    }
    plain.push_back(work[i]);
    ++i;
  }

  plain = StripHtmlTags(plain);
  plain = StripQuotes(plain);
  out.text = util::CollapseWhitespace(plain);
  return out;
}

util::Result<Infobox> WikitextParser::ParseInfoboxBody(
    std::string_view body) const {
  std::vector<std::string_view> parts = SplitTopLevel(body);
  if (parts.empty()) return util::Status::ParseError("empty template body");
  std::string name = text::NormalizeAttributeName(parts[0]);
  if (name.empty()) return util::Status::ParseError("template has no name");

  Infobox box;
  box.template_name = name;
  // template_type: strip the infobox head word.
  box.template_type = name;
  for (const auto& head : options_.infobox_heads) {
    if (util::StartsWith(name, head)) {
      box.template_type = std::string(
          util::StripAsciiWhitespace(std::string_view(name).substr(head.size())));
      break;
    }
  }

  for (size_t p = 1; p < parts.size(); ++p) {
    std::string_view part = parts[p];
    size_t eq = part.find('=');
    if (eq == std::string_view::npos) continue;  // Positional arg: skip.
    std::string key =
        text::NormalizeAttributeName(part.substr(0, eq));
    if (key.empty()) continue;
    AttributeValue value = ParseValue(part.substr(eq + 1));
    if (value.raw.empty()) continue;  // Empty-valued attrs carry no signal.
    box.attributes.emplace_back(std::move(key), std::move(value));
  }
  return box;
}

util::Result<Article> WikitextParser::ParseArticle(
    std::string_view title, std::string_view language,
    std::string_view wikitext) const {
  if (title.empty()) return util::Status::InvalidArgument("empty title");
  if (language.empty()) return util::Status::InvalidArgument("empty language");

  Article article;
  article.title = text::NormalizeTitle(title);
  article.language = std::string(language);

  std::string cleaned = StripRefs(StripComments(wikitext));

  // Redirect pages: "#REDIRECT [[Target]]" (case-insensitive, possibly
  // preceded by whitespace). They carry no content of their own.
  {
    std::string_view head = util::StripAsciiWhitespace(cleaned);
    if (!head.empty() && head[0] == '#') {
      std::string lowered = util::AsciiToLower(head.substr(0, 16));
      if (util::StartsWith(lowered, "#redirect")) {
        size_t open = head.find("[[");
        size_t close = head.find("]]", open == std::string_view::npos
                                            ? 0
                                            : open + 2);
        if (open != std::string_view::npos &&
            close != std::string_view::npos) {
          std::string_view target = head.substr(open + 2, close - open - 2);
          size_t pipe = target.find('|');
          if (pipe != std::string_view::npos) target = target.substr(0, pipe);
          article.redirect_to = text::NormalizeTitle(target);
          return article;
        }
      }
    }
  }

  // Find the first infobox template.
  size_t from = 0;
  while (true) {
    size_t begin = 0;
    size_t end = 0;
    if (!FindTemplate(cleaned, from, &begin, &end)) break;
    std::string_view body =
        std::string_view(cleaned).substr(begin + 2, end - begin - 4);
    std::vector<std::string_view> parts = SplitTopLevel(body);
    std::string name =
        parts.empty() ? "" : text::NormalizeAttributeName(parts[0]);
    if (IsInfoboxTemplateName(name)) {
      auto box = ParseInfoboxBody(body);
      if (box.ok()) {
        article.infobox = std::move(box).ValueOrDie();
        break;
      }
    }
    from = end;
  }

  // Scan all wikilinks for categories and cross-language links.
  size_t i = 0;
  while (i < cleaned.size()) {
    if (i + 1 < cleaned.size() && cleaned[i] == '[' && cleaned[i + 1] == '[') {
      size_t close = cleaned.find("]]", i + 2);
      if (close == std::string::npos) break;
      std::string_view link_body =
          std::string_view(cleaned).substr(i + 2, close - i - 2);
      size_t pipe = link_body.find('|');
      std::string_view target =
          pipe == std::string_view::npos ? link_body
                                         : link_body.substr(0, pipe);
      std::string prefix;
      std::string rest;
      if (SplitNamespace(target, &prefix, &rest) && !rest.empty()) {
        bool is_category =
            std::find(options_.category_prefixes.begin(),
                      options_.category_prefixes.end(),
                      prefix) != options_.category_prefixes.end();
        bool is_language =
            std::find(options_.language_codes.begin(),
                      options_.language_codes.end(),
                      prefix) != options_.language_codes.end();
        if (is_category) {
          article.categories.push_back(text::NormalizeTitle(rest));
        } else if (is_language && prefix != article.language) {
          article.cross_language_links[prefix] = text::NormalizeTitle(rest);
        }
      }
      i = close + 2;
      continue;
    }
    ++i;
  }

  return article;
}

}  // namespace wiki
}  // namespace wikimatch
