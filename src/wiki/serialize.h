// Binary serialization of the corpus for the snapshot store (src/store/).
//
// Articles are written exactly as stored — title, language, infobox,
// categories, cross-language links, entity type, redirect target — and the
// decoder re-adds them and calls Finalize(), which is idempotent on
// already-symmetrized link graphs, so a round-tripped corpus answers every
// index query identically to the original.

#ifndef WIKIMATCH_WIKI_SERIALIZE_H_
#define WIKIMATCH_WIKI_SERIALIZE_H_

#include "util/binary_io.h"
#include "util/result.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace wiki {

/// \brief Appends the corpus (all articles) to `writer`.
void EncodeCorpus(const Corpus& corpus, util::BinaryWriter* writer);

/// \brief Decodes an EncodeCorpus stream into a finalized corpus.
util::Result<Corpus> DecodeCorpus(util::BinaryReader* reader);

/// \brief Appends one article to `writer` (exposed for tests).
void EncodeArticle(const Article& article, util::BinaryWriter* writer);

/// \brief Decodes one EncodeArticle record.
util::Result<Article> DecodeArticle(util::BinaryReader* reader);

}  // namespace wiki
}  // namespace wikimatch

#endif  // WIKIMATCH_WIKI_SERIALIZE_H_
