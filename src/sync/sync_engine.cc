#include "sync/sync_engine.h"

#include <algorithm>
#include <utility>

#include "util/binary_io.h"
#include "util/thread_pool.h"

namespace wikimatch {
namespace sync {

namespace {

// Preference when one source attribute aligns to several target attributes
// (one-to-many): a cell counts as synchronized if ANY correspondent agrees,
// then as stale/conflicting only against its best-matching correspondent —
// one verdict per source cell, never one per correspondent.
int ClassRank(CellClass c) {
  switch (c) {
    case CellClass::kInSync:
      return 0;
    case CellClass::kStale:
      return 1;
    case CellClass::kConflict:
      return 2;
    case CellClass::kUnverifiable:
      return 3;
    case CellClass::kMissing:
      return 4;
  }
  return 4;
}

constexpr uint32_t kReportFormatVersion = 1;

}  // namespace

void SyncCounts::Add(CellClass c) {
  switch (c) {
    case CellClass::kInSync:
      ++in_sync;
      break;
    case CellClass::kStale:
      ++stale;
      break;
    case CellClass::kMissing:
      ++missing;
      break;
    case CellClass::kConflict:
      ++conflict;
      break;
    case CellClass::kUnverifiable:
      ++unverifiable;
      break;
  }
}

std::map<std::pair<std::string, std::string>, SyncCounts>
SyncReport::Summaries() const {
  std::map<std::pair<std::string, std::string>, SyncCounts> out;
  for (const CellVerdict& v : cells) {
    out[{v.pair_lang, v.type_b}].Add(v.cls);
  }
  return out;
}

std::string EncodeSyncReport(const SyncReport& report) {
  util::BinaryWriter w;
  w.PutU32(kReportFormatVersion);
  w.PutU64(report.generation);
  w.PutU32(static_cast<uint32_t>(report.cells.size()));
  for (const CellVerdict& v : report.cells) {
    w.PutString(v.pair_lang);
    w.PutString(v.type_b);
    w.PutString(v.pair_title);
    w.PutString(v.hub_title);
    w.PutString(v.pair_attr);
    w.PutString(v.hub_attr);
    w.PutU8(static_cast<uint8_t>(v.cls));
    w.PutDouble(v.score);
  }
  w.PutU32(static_cast<uint32_t>(report.updates.size()));
  for (const PropagationUpdate& u : report.updates) {
    w.PutString(u.source_lang);
    w.PutString(u.target_lang);
    w.PutString(u.source_title);
    w.PutString(u.target_title);
    w.PutString(u.source_attr);
    w.PutString(u.target_attr);
    w.PutString(u.proposed_value);
    w.PutDouble(u.evidence_score);
  }
  return w.TakeBuffer();
}

util::Result<SyncReport> DecodeSyncReport(const std::string& payload) {
  util::BinaryReader r(payload);
  WIKIMATCH_ASSIGN_OR_RETURN(uint32_t version, r.ReadU32());
  if (version != kReportFormatVersion) {
    return util::Status::InvalidArgument("unsupported sync report version " +
                                         std::to_string(version));
  }
  SyncReport report;
  WIKIMATCH_ASSIGN_OR_RETURN(report.generation, r.ReadU64());
  WIKIMATCH_ASSIGN_OR_RETURN(uint32_t num_cells, r.ReadU32());
  report.cells.reserve(num_cells);
  for (uint32_t i = 0; i < num_cells; ++i) {
    CellVerdict v;
    WIKIMATCH_ASSIGN_OR_RETURN(v.pair_lang, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(v.type_b, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(v.pair_title, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(v.hub_title, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(v.pair_attr, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(v.hub_attr, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(uint8_t cls, r.ReadU8());
    if (cls > static_cast<uint8_t>(CellClass::kUnverifiable)) {
      return util::Status::ParseError("sync report: bad cell class");
    }
    v.cls = static_cast<CellClass>(cls);
    WIKIMATCH_ASSIGN_OR_RETURN(v.score, r.ReadDouble());
    report.cells.push_back(std::move(v));
  }
  WIKIMATCH_ASSIGN_OR_RETURN(uint32_t num_updates, r.ReadU32());
  report.updates.reserve(num_updates);
  for (uint32_t i = 0; i < num_updates; ++i) {
    PropagationUpdate u;
    WIKIMATCH_ASSIGN_OR_RETURN(u.source_lang, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(u.target_lang, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(u.source_title, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(u.target_title, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(u.source_attr, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(u.target_attr, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(u.proposed_value, r.ReadString());
    WIKIMATCH_ASSIGN_OR_RETURN(u.evidence_score, r.ReadDouble());
    report.updates.push_back(std::move(u));
  }
  // Trailing bytes are tolerated (future additive fields, like the
  // snapshot meta section).
  return report;
}

SyncEngine::SyncEngine(const wiki::Corpus* corpus,
                       const match::TranslationDictionary* dictionary,
                       std::string hub_lang)
    : corpus_(corpus),
      hub_(hub_lang),
      extractor_(corpus, dictionary, std::move(hub_lang)) {}

std::vector<SyncScope> SyncEngine::ScopesFromPipelines(
    const std::map<std::pair<std::string, std::string>,
                   match::PipelineResult>& pipelines) {
  std::vector<SyncScope> out;
  for (const auto& [pair, result] : pipelines) {
    for (const match::TypePairResult& t : result.per_type) {
      out.push_back(SyncScope{pair.first, pair.second, t.type_a, t.type_b,
                              &t.alignment.matches});
    }
  }
  return out;
}

std::vector<SyncEngine::Group> SyncEngine::EnumerateGroups(
    const std::vector<SyncScope>& scopes) const {
  std::vector<Group> groups;
  for (const SyncScope& scope : scopes) {
    for (wiki::ArticleId id :
         corpus_->ArticlesOfType(scope.pair_lang, scope.type_a)) {
      wiki::ArticleId hub_id = corpus_->CrossLanguageTarget(id, scope.hub_lang);
      if (hub_id == wiki::kInvalidArticle) continue;
      const wiki::Article& hub_article = corpus_->Get(hub_id);
      if (hub_article.entity_type != scope.type_b ||
          !hub_article.infobox.has_value()) {
        continue;
      }
      groups.push_back(Group{&scope, id, hub_id});
    }
  }
  return groups;
}

SyncEngine::GroupResult SyncEngine::ClassifyGroup(const Group& group) const {
  GroupResult out;
  const SyncScope& scope = *group.scope;
  const wiki::Article& pair_article = corpus_->Get(group.pair_id);
  const wiki::Article& hub_article = corpus_->Get(group.hub_id);
  if (!pair_article.infobox.has_value() || !hub_article.infobox.has_value()) {
    return out;
  }
  const wiki::Infobox& pair_box = *pair_article.infobox;
  const wiki::Infobox& hub_box = *hub_article.infobox;

  auto add_verdict = [&](const std::string& pair_attr,
                         const std::string& hub_attr, CellClass cls,
                         double score) {
    CellVerdict v;
    v.pair_lang = scope.pair_lang;
    v.type_b = scope.type_b;
    v.pair_title = pair_article.title;
    v.hub_title = hub_article.title;
    v.pair_attr = pair_attr;
    v.hub_attr = hub_attr;
    v.cls = cls;
    v.score = score;
    out.cells.push_back(std::move(v));
  };
  auto add_update = [&](bool source_is_pair, const std::string& source_attr,
                        const std::string& target_attr,
                        const std::string& raw_value, double score) {
    PropagationUpdate u;
    u.source_lang = source_is_pair ? scope.pair_lang : scope.hub_lang;
    u.target_lang = source_is_pair ? scope.hub_lang : scope.pair_lang;
    u.source_title = source_is_pair ? pair_article.title : hub_article.title;
    u.target_title = source_is_pair ? hub_article.title : pair_article.title;
    u.source_attr = source_attr;
    u.target_attr = target_attr;
    u.proposed_value = raw_value;
    u.evidence_score = score;
    out.updates.push_back(std::move(u));
  };

  // Forward pass: every aligned attribute the pair edition carries.
  std::set<std::string> seen;
  for (const auto& [name, value] : pair_box.attributes) {
    if (!seen.insert(name).second) continue;  // Find() returns the first
    std::set<eval::AttrKey> correspondents = scope.alignment->CorrespondentsOf(
        eval::AttrKey{scope.pair_lang, name}, scope.hub_lang);
    if (correspondents.empty()) continue;  // unaligned: no basis to sync

    std::vector<std::pair<const eval::AttrKey*, const wiki::AttributeValue*>>
        present;
    for (const eval::AttrKey& c : correspondents) {
      const wiki::AttributeValue* hub_value = hub_box.Find(c.name);
      if (hub_value != nullptr) present.emplace_back(&c, hub_value);
    }
    if (present.empty()) {
      // The hub edition lacks the attribute entirely.
      add_verdict(name, "", CellClass::kMissing, 0.0);
      add_update(/*source_is_pair=*/true, name, correspondents.begin()->name,
                 value.raw, 0.0);
      continue;
    }

    Evidence pair_ev = extractor_.Extract(value, scope.pair_lang);
    size_t best = 0;
    CellClass best_class = CellClass::kUnverifiable;
    Evidence best_ev;
    for (size_t i = 0; i < present.size(); ++i) {
      Evidence hub_ev = extractor_.Extract(*present[i].second, scope.hub_lang);
      CellClass cls = Classify(pair_ev, hub_ev);
      if (i == 0 || ClassRank(cls) < ClassRank(best_class)) {
        best = i;
        best_class = cls;
        best_ev = std::move(hub_ev);
      }
      if (best_class == CellClass::kInSync) break;
    }
    double score = AgreementScore(pair_ev, best_ev);
    add_verdict(name, present[best].first->name, best_class, score);
    if (best_class == CellClass::kStale) {
      if (AIsStale(pair_ev, best_ev)) {
        add_update(/*source_is_pair=*/false, present[best].first->name, name,
                   present[best].second->raw, score);
      } else {
        add_update(/*source_is_pair=*/true, name, present[best].first->name,
                   value.raw, score);
      }
    }
  }

  // Reverse pass: aligned hub attributes with no counterpart in the pair
  // edition (both-present pairs were handled above).
  seen.clear();
  for (const auto& [name, value] : hub_box.attributes) {
    if (!seen.insert(name).second) continue;
    std::set<eval::AttrKey> correspondents = scope.alignment->CorrespondentsOf(
        eval::AttrKey{scope.hub_lang, name}, scope.pair_lang);
    if (correspondents.empty()) continue;
    bool any_present = std::any_of(
        correspondents.begin(), correspondents.end(),
        [&](const eval::AttrKey& c) { return pair_box.Find(c.name); });
    if (any_present) continue;
    add_verdict("", name, CellClass::kMissing, 0.0);
    add_update(/*source_is_pair=*/false, name, correspondents.begin()->name,
               value.raw, 0.0);
  }
  return out;
}

SyncReport SyncEngine::Assemble(std::vector<GroupResult> results) {
  SyncReport report;
  for (GroupResult& r : results) {
    report.cells.insert(report.cells.end(),
                        std::make_move_iterator(r.cells.begin()),
                        std::make_move_iterator(r.cells.end()));
    report.updates.insert(report.updates.end(),
                          std::make_move_iterator(r.updates.begin()),
                          std::make_move_iterator(r.updates.end()));
  }
  return report;
}

namespace {

// MatchSet lookups lazily path-compress a mutable union-find; compressing up
// front makes the concurrent const lookups below write-free.
void FreezeAlignments(const std::vector<SyncScope>& scopes) {
  for (const SyncScope& scope : scopes) {
    if (scope.alignment != nullptr) scope.alignment->CompressPaths();
  }
}

}  // namespace

SyncReport SyncEngine::Run(const std::vector<SyncScope>& scopes,
                           size_t num_threads) const {
  FreezeAlignments(scopes);
  std::vector<Group> groups = EnumerateGroups(scopes);
  std::vector<GroupResult> results(groups.size());
  util::thread_pool_for(groups.size(), num_threads, [&](size_t i) {
    results[i] = ClassifyGroup(groups[i]);
  });
  return Assemble(std::move(results));
}

SyncReport SyncEngine::Resync(
    const std::vector<SyncScope>& scopes, const SyncReport& previous,
    const std::set<std::pair<std::string, std::string>>& dirty,
    size_t num_threads) const {
  FreezeAlignments(scopes);
  // Rows and updates of one group all name the pair-side article, and a
  // title is unique within a language, so (pair_lang, pair_title) keys the
  // previous report's groups.
  using GroupKey = std::pair<std::string, std::string>;
  std::map<GroupKey, GroupResult> prev;
  for (const CellVerdict& v : previous.cells) {
    prev[{v.pair_lang, v.pair_title}].cells.push_back(v);
  }
  for (const PropagationUpdate& u : previous.updates) {
    GroupKey key = u.source_lang == hub_
                       ? GroupKey{u.target_lang, u.target_title}
                       : GroupKey{u.source_lang, u.source_title};
    prev[key].updates.push_back(u);
  }

  std::vector<Group> groups = EnumerateGroups(scopes);
  std::vector<GroupResult> results(groups.size());
  util::thread_pool_for(groups.size(), num_threads, [&](size_t i) {
    const Group& g = groups[i];
    GroupKey key{g.scope->pair_lang, corpus_->Get(g.pair_id).title};
    bool is_dirty =
        dirty.count(key) > 0 ||
        dirty.count({g.scope->hub_lang, corpus_->Get(g.hub_id).title}) > 0;
    auto it = prev.find(key);
    if (!is_dirty && it != prev.end()) {
      results[i] = it->second;  // clean group: reuse the previous verdicts
    } else {
      results[i] = ClassifyGroup(g);
    }
  });
  return Assemble(std::move(results));
}

}  // namespace sync
}  // namespace wikimatch
