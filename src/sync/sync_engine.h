// Cross-language value synchronization engine (docs/SYNC.md).
//
// The match pipeline says *which* attributes correspond across editions
// ("starring ~ elenco original"); the SyncEngine uses that alignment to say
// which attribute *values* agree. It walks every dual article pair of every
// aligned type, classifies each aligned cell pair (in-sync / stale /
// missing / conflicting / unverifiable) from evidence signatures
// (sync/evidence.h), and emits an ordered, deterministic SyncReport plus
// the PropagationUpdates that would repair the stale and missing cells.
//
// Determinism: groups (article pairs) are enumerated in scope order then
// corpus index order, classified into pre-sized per-group slots (optionally
// on the shared thread pool), and concatenated — the report is
// byte-identical at any thread count. Resync() recomputes only groups whose
// own articles are dirty and copies the rest from the previous report,
// byte-identical to a full Run() under the incremental contract documented
// in docs/SYNC.md.

#ifndef WIKIMATCH_SYNC_SYNC_ENGINE_H_
#define WIKIMATCH_SYNC_SYNC_ENGINE_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "eval/match_set.h"
#include "match/dictionary.h"
#include "match/pipeline.h"
#include "sync/evidence.h"
#include "util/result.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace sync {

/// \brief Classification of one aligned cell pair of one article pair.
struct CellVerdict {
  std::string pair_lang;   ///< non-hub edition of the pair
  std::string type_b;      ///< hub-side localized type ("film")
  std::string pair_title;  ///< article title in pair_lang
  std::string hub_title;   ///< article title in the hub language
  /// Normalized attribute names on each side. Exactly one is empty for
  /// kMissing verdicts — the edition lacking the attribute.
  std::string pair_attr;
  std::string hub_attr;
  CellClass cls = CellClass::kUnverifiable;
  /// Evidence agreement in [0, 1] (AgreementScore); 0 for kMissing.
  double score = 0.0;

  bool operator==(const CellVerdict&) const = default;
};

/// \brief A proposed cross-edition repair for a stale or missing cell.
struct PropagationUpdate {
  std::string source_lang;
  std::string target_lang;
  std::string source_title;
  std::string target_title;
  std::string source_attr;  ///< normalized attribute holding the evidence
  std::string target_attr;  ///< normalized attribute to create/overwrite
  std::string proposed_value;  ///< raw wikitext of the source cell
  /// Agreement of the pair that triggered the update (0 for missing).
  double evidence_score = 0.0;

  bool operator==(const PropagationUpdate&) const = default;
};

/// \brief Per-(pair language, type) classification counts.
struct SyncCounts {
  uint64_t in_sync = 0;
  uint64_t stale = 0;
  uint64_t missing = 0;
  uint64_t conflict = 0;
  uint64_t unverifiable = 0;

  uint64_t total() const {
    return in_sync + stale + missing + conflict + unverifiable;
  }
  void Add(CellClass c);
  bool operator==(const SyncCounts&) const = default;
};

/// \brief Deterministic output of one synchronization run.
struct SyncReport {
  /// Every verdict, grouped by article pair in enumeration order.
  std::vector<CellVerdict> cells;
  /// Proposed repairs for the stale and missing cells, in cell order.
  std::vector<PropagationUpdate> updates;
  /// Snapshot generation the report was computed against (serve uses this
  /// to pin sync answers to a generation, like every other verb).
  uint64_t generation = 0;

  bool empty() const {
    return cells.empty() && updates.empty() && generation == 0;
  }
  /// \brief Aggregated counts keyed by (pair_lang, type_b), sorted.
  std::map<std::pair<std::string, std::string>, SyncCounts> Summaries() const;

  bool operator==(const SyncReport&) const = default;
};

/// \brief Binary serialization (snapshot section kind 5, BENCH byte
/// equivalence checks). Encode/Decode round-trip exactly.
std::string EncodeSyncReport(const SyncReport& report);
util::Result<SyncReport> DecodeSyncReport(const std::string& payload);

/// \brief One aligned type pair to synchronize.
struct SyncScope {
  std::string pair_lang;  ///< non-hub language ("pt")
  std::string hub_lang;   ///< hub language ("en")
  std::string type_a;     ///< localized type in pair_lang ("filme")
  std::string type_b;     ///< localized type in hub_lang ("film")
  /// Attribute alignment spanning both languages; borrowed, must outlive
  /// the engine calls using this scope.
  const eval::MatchSet* alignment = nullptr;
};

/// \brief Walks aligned article pairs and classifies their cells.
class SyncEngine {
 public:
  /// Pointers are borrowed; the corpus must be finalized.
  SyncEngine(const wiki::Corpus* corpus,
             const match::TranslationDictionary* dictionary,
             std::string hub_lang);

  /// \brief Full synchronization pass over `scopes`, classifying groups on
  /// up to `num_threads` pool workers. Byte-identical at any thread count.
  SyncReport Run(const std::vector<SyncScope>& scopes,
                 size_t num_threads = 1) const;

  /// \brief Incremental re-sync: groups whose pair- or hub-side article key
  /// (language, title) is in `dirty` — or which `previous` has no rows
  /// for — are reclassified; all other groups are copied from `previous`.
  /// Byte-identical to Run() on the same corpus when every changed article
  /// is in `dirty` (see docs/SYNC.md for the exact contract).
  SyncReport Resync(
      const std::vector<SyncScope>& scopes, const SyncReport& previous,
      const std::set<std::pair<std::string, std::string>>& dirty,
      size_t num_threads = 1) const;

  /// \brief Scopes for every aligned type of every pipeline result, in
  /// (language pair, per-type) order. Alignment pointers borrow from
  /// `pipelines`, which must outlive the returned scopes.
  static std::vector<SyncScope> ScopesFromPipelines(
      const std::map<std::pair<std::string, std::string>,
                     match::PipelineResult>& pipelines);

  const EvidenceExtractor& extractor() const { return extractor_; }

 private:
  /// One article pair to classify.
  struct Group {
    const SyncScope* scope = nullptr;
    wiki::ArticleId pair_id = wiki::kInvalidArticle;
    wiki::ArticleId hub_id = wiki::kInvalidArticle;
  };
  /// Verdicts and updates of one group, concatenated in group order.
  struct GroupResult {
    std::vector<CellVerdict> cells;
    std::vector<PropagationUpdate> updates;
  };

  std::vector<Group> EnumerateGroups(
      const std::vector<SyncScope>& scopes) const;
  GroupResult ClassifyGroup(const Group& group) const;
  static SyncReport Assemble(std::vector<GroupResult> results);

  const wiki::Corpus* corpus_;
  std::string hub_;
  EvidenceExtractor extractor_;
};

}  // namespace sync
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNC_SYNC_ENGINE_H_
