#include "sync/evidence.h"

#include <algorithm>
#include <array>
#include <cstdlib>
#include <vector>

#include "text/normalize.h"
#include "util/string_util.h"

namespace wikimatch {
namespace sync {

namespace {

// Month names in diacritics-folded form; Vietnamese writes months as
// numerals ("18 tháng 6") so needs no table.
constexpr std::array<const char*, 12> kEnMonths = {
    "january", "february", "march",     "april",   "may",      "june",
    "july",    "august",   "september", "october", "november", "december"};
constexpr std::array<const char*, 12> kPtMonths = {
    "janeiro", "fevereiro", "marco",    "abril",   "maio",     "junho",
    "julho",   "agosto",    "setembro", "outubro", "novembro", "dezembro"};

// Folded magnitude words that scale the preceding number by one million
// ("US$ 44 milhões", "44 triệu USD").
constexpr std::array<const char*, 4> kMillionWords = {"milhoes", "million",
                                                     "millions", "trieu"};

// Folded connective words that may appear inside a date fragment.
constexpr std::array<const char*, 3> kDateConnectives = {"de", "thang", "nam"};

bool IsDigits(const std::string& s) {
  return !s.empty() &&
         std::all_of(s.begin(), s.end(),
                     [](unsigned char c) { return c >= '0' && c <= '9'; });
}

// Month number (1-12) of a folded token, or 0.
int MonthNumber(const std::string& token) {
  for (size_t i = 0; i < kEnMonths.size(); ++i) {
    if (token == kEnMonths[i] || token == kPtMonths[i]) {
      return static_cast<int>(i) + 1;
    }
  }
  return 0;
}

bool IsMillionWord(const std::string& token) {
  return std::find(kMillionWords.begin(), kMillionWords.end(), token) !=
         kMillionWords.end();
}

bool IsDateConnective(const std::string& token) {
  return std::find(kDateConnectives.begin(), kDateConnectives.end(), token) !=
         kDateConnectives.end();
}

// ASCII-alnum token runs of a folded string; everything else separates.
std::vector<std::string> Tokenize(const std::string& folded) {
  std::vector<std::string> tokens;
  std::string current;
  for (unsigned char c : folded) {
    if ((c >= 'a' && c <= 'z') || (c >= '0' && c <= '9')) {
      current.push_back(static_cast<char>(c));
    } else if (!current.empty()) {
      tokens.push_back(std::move(current));
      current.clear();
    }
  }
  if (!current.empty()) tokens.push_back(std::move(current));
  return tokens;
}

// a's evidence is contained in b's, componentwise.
bool ContainedIn(const Evidence& a, const Evidence& b) {
  return std::includes(b.refs.begin(), b.refs.end(), a.refs.begin(),
                       a.refs.end()) &&
         std::includes(b.numbers.begin(), b.numbers.end(), a.numbers.begin(),
                       a.numbers.end());
}

}  // namespace

const char* CellClassName(CellClass c) {
  switch (c) {
    case CellClass::kInSync:
      return "in_sync";
    case CellClass::kStale:
      return "stale";
    case CellClass::kMissing:
      return "missing";
    case CellClass::kConflict:
      return "conflict";
    case CellClass::kUnverifiable:
      return "unverifiable";
  }
  return "unknown";
}

CellClass Classify(const Evidence& a, const Evidence& b) {
  if (!a.comparable() && !b.comparable()) {
    return a.normalized == b.normalized ? CellClass::kInSync
                                        : CellClass::kUnverifiable;
  }
  if (!a.comparable() || !b.comparable()) return CellClass::kUnverifiable;
  bool a_in_b = ContainedIn(a, b);
  bool b_in_a = ContainedIn(b, a);
  if (a_in_b && b_in_a) return CellClass::kInSync;
  if (a_in_b || b_in_a) return CellClass::kStale;
  return CellClass::kConflict;
}

bool AIsStale(const Evidence& a, const Evidence& b) {
  return ContainedIn(a, b);
}

double AgreementScore(const Evidence& a, const Evidence& b) {
  if (!a.comparable() && !b.comparable()) {
    return a.normalized == b.normalized ? 1.0 : 0.0;
  }
  auto tokens = [](const Evidence& e) {
    std::set<std::string> out(e.refs);
    for (int64_t n : e.numbers) out.insert("#" + std::to_string(n));
    return out;
  };
  std::set<std::string> ta = tokens(a);
  std::set<std::string> tb = tokens(b);
  size_t common = 0;
  for (const std::string& t : ta) common += tb.count(t);
  size_t total = ta.size() + tb.size() - common;
  return total == 0 ? 1.0
                    : static_cast<double>(common) / static_cast<double>(total);
}

EvidenceExtractor::EvidenceExtractor(
    const wiki::Corpus* corpus, const match::TranslationDictionary* dictionary,
    std::string hub_lang)
    : corpus_(corpus), dictionary_(dictionary), hub_(std::move(hub_lang)) {}

bool EvidenceExtractor::IsDateLikeTitle(const std::string& title) {
  std::vector<std::string> tokens = Tokenize(text::FoldDiacritics(title));
  if (tokens.empty()) return false;
  bool has_digits = false;
  for (const std::string& tok : tokens) {
    if (IsDigits(tok)) {
      has_digits = true;
    } else if (MonthNumber(tok) == 0 && !IsDateConnective(tok)) {
      return false;
    }
  }
  return has_digits;
}

std::string EvidenceExtractor::CanonicalTitle(const std::string& lang,
                                              const std::string& title) const {
  wiki::ArticleId id = corpus_->FindByTitle(lang, title);
  if (lang == hub_) {
    // Hub titles are already canonical; resolving just follows redirects.
    return id != wiki::kInvalidArticle ? corpus_->Get(id).title : title;
  }
  auto resolve_hub = [&](const std::string& hub_title) {
    wiki::ArticleId hid = corpus_->FindByTitle(hub_, hub_title);
    return hid != wiki::kInvalidArticle ? corpus_->Get(hid).title : hub_title;
  };
  if (id != wiki::kInvalidArticle) {
    wiki::ArticleId hid = corpus_->CrossLanguageTarget(id, hub_);
    if (hid != wiki::kInvalidArticle) return corpus_->Get(hid).title;
    auto translated = dictionary_->Translate(lang, corpus_->Get(id).title, hub_);
    if (translated.has_value()) return resolve_hub(*translated);
    return lang + ":" + corpus_->Get(id).title;
  }
  // Red link: the page doesn't exist in `lang`, but the dictionary is built
  // from symmetrized cross-language links in both directions, so the title
  // still translates whenever any edition records the pairing.
  auto translated = dictionary_->Translate(lang, title, hub_);
  if (translated.has_value()) return resolve_hub(*translated);
  return lang + ":" + title;
}

Evidence EvidenceExtractor::Extract(const wiki::AttributeValue& value,
                                    const std::string& lang) const {
  Evidence ev;
  ev.normalized = text::NormalizeValue(value.text);

  // Numbers, months, magnitudes from the folded visible text (link anchors
  // are inlined in `text`, so linked dates and years contribute too).
  std::vector<std::string> tokens =
      Tokenize(text::FoldDiacritics(ev.normalized));
  for (size_t i = 0; i < tokens.size(); ++i) {
    const std::string& tok = tokens[i];
    if (IsDigits(tok)) {
      if (tok.size() > 12) continue;  // not a quantity (id-like digit run)
      int64_t n = std::strtoll(tok.c_str(), nullptr, 10);
      if (i + 1 < tokens.size() && IsMillionWord(tokens[i + 1])) {
        n *= 1000000;
        ++i;
      }
      ev.numbers.insert(n);
    } else {
      int month = MonthNumber(tok);
      if (month > 0) ev.numbers.insert(month);
    }
  }

  // Refs from explicit links (minus date-page links, which are style).
  for (const wiki::Hyperlink& link : value.links) {
    if (IsDateLikeTitle(link.target)) continue;
    ev.refs.insert(CanonicalTitle(lang, link.target));
  }

  // Refs recovered from unlinked components: editors drop brackets but keep
  // the name ("porto nava"), and list items split on commas (the parser
  // flattens {{ubl|...}} to comma-joined form). Only resolvable titles are
  // admitted — free text must not fabricate references.
  for (const std::string& piece : util::Split(value.text, ',')) {
    std::string t = text::NormalizeTitle(piece);
    if (t.empty() || IsDateLikeTitle(t)) continue;
    if (corpus_->FindByTitle(lang, t) == wiki::kInvalidArticle &&
        !dictionary_->Translate(lang, t, hub_).has_value()) {
      continue;
    }
    ev.refs.insert(CanonicalTitle(lang, t));
  }
  return ev;
}

}  // namespace sync
}  // namespace wikimatch
