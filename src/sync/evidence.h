// Evidence extraction and cell-pair classification for cross-language
// value synchronization (docs/SYNC.md).
//
// A cell's *evidence signature* is the language-independent content its
// rendered value claims: canonical (hub-language) titles of the entities it
// links to or names, and the numbers it shows. Two aligned cells are
// classified by comparing signatures — equal evidence is in-sync, strict
// containment is staleness (the subset side lacks information the other
// has), symmetric difference is a conflict, and cells with no comparable
// evidence on either side fall back to normalized string equality or are
// declared unverifiable (free text is language-specific by nature; unequal
// strings are not evidence of staleness).
//
// The same Classify() runs over engine-extracted signatures (from parsed
// wikitext) and oracle-recorded ones (from the generator's RenderTrace), so
// precision/recall against the oracle measures exactly one thing:
// extraction fidelity.

#ifndef WIKIMATCH_SYNC_EVIDENCE_H_
#define WIKIMATCH_SYNC_EVIDENCE_H_

#include <cstdint>
#include <set>
#include <string>

#include "match/dictionary.h"
#include "wiki/article.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace sync {

/// \brief Classification of one aligned cross-edition cell pair.
enum class CellClass : uint8_t {
  kInSync = 0,        ///< both editions claim the same content
  kStale = 1,         ///< one edition lacks part of the other's content
  kMissing = 2,       ///< one edition lacks the attribute entirely
  kConflict = 3,      ///< the editions claim contradictory content
  kUnverifiable = 4,  ///< no comparable evidence on either side
};

/// \brief Stable lowercase name ("in_sync", "stale", ...).
const char* CellClassName(CellClass c);

/// \brief Evidence signature of one rendered infobox cell.
struct Evidence {
  /// Canonical hub-language titles of referenced entities. Unresolvable
  /// link targets keep a "lang:title" form so two editions sharing the
  /// same red link still compare equal.
  std::set<std::string> refs;
  /// Numeric content: dates contribute {day, month, year} (month words
  /// recognized per language), money the magnitude ("44 milhões" ->
  /// 44000000), durations and counts the shown figure.
  std::set<int64_t> numbers;
  /// NormalizeValue form of the rendered text — the fallback comparator
  /// when neither side has refs or numbers.
  std::string normalized;

  bool comparable() const { return !refs.empty() || !numbers.empty(); }
};

/// \brief Classifies a cell pair from its evidence signatures. Returns
/// kInSync, kStale, kConflict, or kUnverifiable — never kMissing, which is
/// a property of the walk (one side lacks the cell), not of two signatures.
CellClass Classify(const Evidence& a, const Evidence& b);

/// \brief For a kStale pair: true iff `a` is the stale side (a's evidence
/// is a strict subset of b's). Precondition: Classify(a, b) == kStale.
bool AIsStale(const Evidence& a, const Evidence& b);

/// \brief Agreement in [0, 1]: Jaccard similarity over the union of ref and
/// number tokens; string equality when neither side is comparable.
double AgreementScore(const Evidence& a, const Evidence& b);

/// \brief Extracts evidence signatures from parsed infobox values.
///
/// Canonicalization maps every referenced title toward the hub language:
/// resolvable titles follow redirects and cross-language links; red links
/// fall back to the translation dictionary (built bidirectionally, so a
/// title can translate even when its own edition lacks the page). Day-page
/// and year-page links ("18 de junho", "1950") are date *representation* —
/// they contribute numbers, never refs, because linking them is an
/// edition-local style choice.
class EvidenceExtractor {
 public:
  /// Pointers are borrowed; both must outlive the extractor.
  EvidenceExtractor(const wiki::Corpus* corpus,
                    const match::TranslationDictionary* dictionary,
                    std::string hub_lang);

  /// \brief Signature of one attribute value rendered in `lang`.
  Evidence Extract(const wiki::AttributeValue& value,
                   const std::string& lang) const;

  /// \brief Canonical hub-language form of a referenced title.
  std::string CanonicalTitle(const std::string& lang,
                             const std::string& title) const;

  /// \brief True iff the normalized title reads as a date fragment in any
  /// supported language ("june 18", "18 de junho", "18 tháng 6", "1950").
  static bool IsDateLikeTitle(const std::string& title);

  const std::string& hub() const { return hub_; }

 private:
  const wiki::Corpus* corpus_;
  const match::TranslationDictionary* dictionary_;
  std::string hub_;
};

}  // namespace sync
}  // namespace wikimatch

#endif  // WIKIMATCH_SYNC_EVIDENCE_H_
