#include "la/logistic.h"

#include <algorithm>
#include <cmath>

namespace wikimatch {
namespace la {

namespace {
inline double Sigmoid(double z) {
  if (z >= 0) {
    double e = std::exp(-z);
    return 1.0 / (1.0 + e);
  }
  double e = std::exp(z);
  return e / (1.0 + e);
}
}  // namespace

util::Status LogisticRegression::Train(
    const std::vector<LabeledExample>& examples,
    const LogisticOptions& options) {
  if (examples.empty()) {
    return util::Status::InvalidArgument("no training examples");
  }
  const size_t dim = examples[0].features.size();
  if (dim == 0) return util::Status::InvalidArgument("empty feature vector");
  bool has_pos = false;
  bool has_neg = false;
  for (const auto& ex : examples) {
    if (ex.features.size() != dim) {
      return util::Status::InvalidArgument("inconsistent feature dimension");
    }
    (ex.label ? has_pos : has_neg) = true;
  }
  if (!has_pos || !has_neg) {
    return util::Status::InvalidArgument("training needs both classes");
  }

  // Standardization statistics.
  mean_.assign(dim, 0.0);
  stddev_.assign(dim, 1.0);
  if (options.standardize) {
    for (const auto& ex : examples) {
      for (size_t d = 0; d < dim; ++d) mean_[d] += ex.features[d];
    }
    for (auto& m : mean_) m /= static_cast<double>(examples.size());
    std::vector<double> var(dim, 0.0);
    for (const auto& ex : examples) {
      for (size_t d = 0; d < dim; ++d) {
        double delta = ex.features[d] - mean_[d];
        var[d] += delta * delta;
      }
    }
    for (size_t d = 0; d < dim; ++d) {
      stddev_[d] =
          std::sqrt(var[d] / static_cast<double>(examples.size()));
      if (stddev_[d] < 1e-9) stddev_[d] = 1.0;
    }
  }

  auto scaled = [&](const LabeledExample& ex, size_t d) {
    return (ex.features[d] - mean_[d]) / stddev_[d];
  };

  weights_.assign(dim + 1, 0.0);
  util::Rng rng(options.seed);
  std::vector<size_t> order(examples.size());
  for (size_t i = 0; i < order.size(); ++i) order[i] = i;

  for (int epoch = 0; epoch < options.epochs; ++epoch) {
    rng.Shuffle(&order);
    for (size_t start = 0; start < order.size();
         start += options.batch_size) {
      size_t end = std::min(order.size(), start + options.batch_size);
      std::vector<double> grad(dim + 1, 0.0);
      for (size_t k = start; k < end; ++k) {
        const LabeledExample& ex = examples[order[k]];
        double z = weights_[dim];
        for (size_t d = 0; d < dim; ++d) z += weights_[d] * scaled(ex, d);
        double err = Sigmoid(z) - (ex.label ? 1.0 : 0.0);
        for (size_t d = 0; d < dim; ++d) grad[d] += err * scaled(ex, d);
        grad[dim] += err;
      }
      double inv = 1.0 / static_cast<double>(end - start);
      for (size_t d = 0; d <= dim; ++d) {
        double l2 = d < dim ? options.l2 * weights_[d] : 0.0;
        weights_[d] -= options.learning_rate * (grad[d] * inv + l2);
      }
    }
  }
  return util::Status::OK();
}

double LogisticRegression::Predict(const std::vector<double>& features) const {
  if (weights_.empty() || features.size() + 1 != weights_.size()) return 0.5;
  const size_t dim = features.size();
  double z = weights_[dim];
  for (size_t d = 0; d < dim; ++d) {
    z += weights_[d] * (features[d] - mean_[d]) / stddev_[d];
  }
  return Sigmoid(z);
}

}  // namespace la
}  // namespace wikimatch
