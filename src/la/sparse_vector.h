// Sparse term vectors: (term-id -> weight), the representation used by the
// value-similarity and link-structure features.

#ifndef WIKIMATCH_LA_SPARSE_VECTOR_H_
#define WIKIMATCH_LA_SPARSE_VECTOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <unordered_map>
#include <vector>

namespace wikimatch {
namespace la {

/// \brief Sparse vector keyed by uint32 term ids, values double.
class SparseVector {
 public:
  SparseVector() = default;

  /// \brief Adds `delta` to component `id`.
  void Add(uint32_t id, double delta) { entries_[id] += delta; }

  /// \brief Sets component `id` to `value`.
  void Set(uint32_t id, double value) { entries_[id] = value; }

  /// \brief Value of component `id` (0 if absent).
  double Get(uint32_t id) const {
    auto it = entries_.find(id);
    return it == entries_.end() ? 0.0 : it->second;
  }

  size_t NumNonZero() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  /// \brief Euclidean norm.
  double Norm() const;

  /// \brief Sum of components (e.g. total term frequency).
  double Sum() const;

  /// \brief Dot product with another sparse vector.
  double Dot(const SparseVector& other) const;

  /// \brief Cosine similarity; 0 if either vector has zero norm.
  double Cosine(const SparseVector& other) const;

  /// \brief L2-normalized copy (zero vector stays zero).
  SparseVector Normalized() const;

  /// \brief Iteration support (ordered by id for determinism).
  const std::map<uint32_t, double>& entries() const { return entries_; }

 private:
  std::map<uint32_t, double> entries_;
};

/// \brief Interns strings to dense uint32 ids (shared term space for a set
/// of vectors being compared).
class TermDictionary {
 public:
  /// \brief Id of `term`, creating one if new.
  uint32_t GetOrAdd(const std::string& term);

  /// \brief Id of `term`, or UINT32_MAX when unknown.
  uint32_t Lookup(const std::string& term) const;

  /// \brief The interned term for `id`.
  const std::string& TermOf(uint32_t id) const { return terms_[id]; }

  size_t size() const { return terms_.size(); }

  static constexpr uint32_t kNotFound = 0xFFFFFFFFu;

 private:
  std::unordered_map<std::string, uint32_t> index_;
  std::vector<std::string> terms_;
};

}  // namespace la
}  // namespace wikimatch

#endif  // WIKIMATCH_LA_SPARSE_VECTOR_H_
