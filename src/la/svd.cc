#include "la/svd.h"

#include <algorithm>
#include <cmath>
#include <numeric>

#include "util/status.h"

namespace wikimatch {
namespace la {

namespace {

// Frobenius norm of the strictly-off-diagonal part.
double OffDiagonalNorm(const Matrix& a) {
  double s = 0.0;
  for (size_t i = 0; i < a.rows(); ++i) {
    for (size_t j = 0; j < a.cols(); ++j) {
      if (i != j) s += a(i, j) * a(i, j);
    }
  }
  return std::sqrt(s);
}

}  // namespace

util::Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                      int max_sweeps,
                                                      double tol) {
  if (a.rows() != a.cols()) {
    return util::Status::InvalidArgument("matrix must be square");
  }
  const size_t n = a.rows();
  if (n == 0) {
    return EigenDecomposition{{}, Matrix()};
  }
  // Work on a symmetrized copy to tolerate tiny asymmetries from upstream
  // floating-point accumulation.
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) m(i, j) = 0.5 * (a(i, j) + a(j, i));
  }
  Matrix v = Matrix::Identity(n);
  const double scale = std::max(m.FrobeniusNorm(), 1e-300);

  for (int sweep = 0; sweep < max_sweeps; ++sweep) {
    if (OffDiagonalNorm(m) <= tol * scale) break;
    for (size_t p = 0; p + 1 < n; ++p) {
      for (size_t q = p + 1; q < n; ++q) {
        double apq = m(p, q);
        if (std::fabs(apq) <= 1e-300) continue;
        double app = m(p, p);
        double aqq = m(q, q);
        // Classical Jacobi rotation.
        double theta = (aqq - app) / (2.0 * apq);
        double t = (theta >= 0.0 ? 1.0 : -1.0) /
                   (std::fabs(theta) + std::sqrt(theta * theta + 1.0));
        double c = 1.0 / std::sqrt(t * t + 1.0);
        double s = t * c;
        // Apply rotation to rows/cols p, q of m.
        for (size_t k = 0; k < n; ++k) {
          double mkp = m(k, p);
          double mkq = m(k, q);
          m(k, p) = c * mkp - s * mkq;
          m(k, q) = s * mkp + c * mkq;
        }
        for (size_t k = 0; k < n; ++k) {
          double mpk = m(p, k);
          double mqk = m(q, k);
          m(p, k) = c * mpk - s * mqk;
          m(q, k) = s * mpk + c * mqk;
        }
        // Accumulate eigenvectors.
        for (size_t k = 0; k < n; ++k) {
          double vkp = v(k, p);
          double vkq = v(k, q);
          v(k, p) = c * vkp - s * vkq;
          v(k, q) = s * vkp + c * vkq;
        }
      }
    }
  }

  // Extract and sort by descending eigenvalue.
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::vector<double> diag(n);
  for (size_t i = 0; i < n; ++i) diag[i] = m(i, i);
  std::stable_sort(order.begin(), order.end(),
                   [&](size_t x, size_t y) { return diag[x] > diag[y]; });

  EigenDecomposition out;
  out.values.resize(n);
  out.vectors = Matrix(n, n);
  for (size_t k = 0; k < n; ++k) {
    out.values[k] = diag[order[k]];
    for (size_t i = 0; i < n; ++i) out.vectors(i, k) = v(i, order[k]);
  }
  return out;
}

Matrix SvdResult::Reconstruct() const {
  const size_t k = singular_values.size();
  Matrix us(u.rows(), k);
  for (size_t i = 0; i < u.rows(); ++i) {
    for (size_t j = 0; j < k; ++j) us(i, j) = u(i, j) * singular_values[j];
  }
  return us.Multiply(v.Transposed());
}

std::vector<double> SvdResult::ScaledRowVector(size_t i) const {
  const size_t k = singular_values.size();
  std::vector<double> out(k);
  for (size_t j = 0; j < k; ++j) out[j] = u(i, j) * singular_values[j];
  return out;
}

util::Result<SvdResult> ComputeSvd(const Matrix& a, double rank_tol) {
  const size_t m = a.rows();
  const size_t n = a.cols();
  if (m == 0 || n == 0) {
    return SvdResult{Matrix(m, 0), {}, Matrix(n, 0)};
  }
  const bool rows_short = m <= n;
  // Gram matrix over the shorter side.
  Matrix gram = rows_short ? a.GramOfRows() : a.Transposed().GramOfRows();
  WIKIMATCH_ASSIGN_OR_RETURN(EigenDecomposition eig,
                             JacobiEigenSymmetric(gram));

  const size_t short_dim = rows_short ? m : n;
  double sigma_max = std::sqrt(std::max(eig.values.empty() ? 0.0 : eig.values[0], 0.0));
  // Count numerically significant singular values.
  size_t k = 0;
  for (size_t i = 0; i < short_dim; ++i) {
    double sigma = std::sqrt(std::max(eig.values[i], 0.0));
    if (sigma > rank_tol * std::max(sigma_max, 1e-300)) ++k;
  }
  if (k == 0) {
    return SvdResult{Matrix(m, 0), {}, Matrix(n, 0)};
  }

  SvdResult out;
  out.singular_values.resize(k);
  Matrix short_vecs(short_dim, k);
  for (size_t j = 0; j < k; ++j) {
    out.singular_values[j] = std::sqrt(std::max(eig.values[j], 0.0));
    for (size_t i = 0; i < short_dim; ++i) short_vecs(i, j) = eig.vectors(i, j);
  }

  // Recover the long-side factor: long = A^T * short * S^{-1} (or A * ...).
  if (rows_short) {
    out.u = short_vecs;                     // m x k
    Matrix at_u = a.Transposed().Multiply(short_vecs);  // n x k
    out.v = Matrix(n, k);
    for (size_t j = 0; j < k; ++j) {
      double inv = 1.0 / out.singular_values[j];
      for (size_t i = 0; i < n; ++i) out.v(i, j) = at_u(i, j) * inv;
    }
  } else {
    out.v = short_vecs;                     // n x k
    Matrix a_v = a.Multiply(short_vecs);    // m x k
    out.u = Matrix(m, k);
    for (size_t j = 0; j < k; ++j) {
      double inv = 1.0 / out.singular_values[j];
      for (size_t i = 0; i < m; ++i) out.u(i, j) = a_v(i, j) * inv;
    }
  }
  return out;
}

util::Result<SvdResult> ComputeTruncatedSvd(const Matrix& a, size_t f,
                                            double rank_tol) {
  WIKIMATCH_ASSIGN_OR_RETURN(SvdResult full, ComputeSvd(a, rank_tol));
  const size_t k = full.singular_values.size();
  if (f == 0 || f >= k) return full;

  SvdResult out;
  out.singular_values.assign(full.singular_values.begin(),
                             full.singular_values.begin() + static_cast<long>(f));
  out.u = Matrix(full.u.rows(), f);
  out.v = Matrix(full.v.rows(), f);
  for (size_t j = 0; j < f; ++j) {
    for (size_t i = 0; i < full.u.rows(); ++i) out.u(i, j) = full.u(i, j);
    for (size_t i = 0; i < full.v.rows(); ++i) out.v(i, j) = full.v(i, j);
  }
  return out;
}

}  // namespace la
}  // namespace wikimatch
