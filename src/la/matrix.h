// Dense row-major matrix and the small set of operations the LSI pipeline
// needs. Matrices in this project are modest (attributes x dual-language
// infoboxes), so clarity beats blocking/vectorization tricks.

#ifndef WIKIMATCH_LA_MATRIX_H_
#define WIKIMATCH_LA_MATRIX_H_

#include <cassert>
#include <cstddef>
#include <string>
#include <vector>

namespace wikimatch {
namespace la {

/// \brief Dense row-major matrix of doubles.
class Matrix {
 public:
  Matrix() : rows_(0), cols_(0) {}
  Matrix(size_t rows, size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {}

  /// Builds from nested initializer data (rows of equal length).
  static Matrix FromRows(const std::vector<std::vector<double>>& rows);

  /// Identity matrix of order n.
  static Matrix Identity(size_t n);

  size_t rows() const { return rows_; }
  size_t cols() const { return cols_; }

  double& operator()(size_t r, size_t c) {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(size_t r, size_t c) const {
    assert(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  /// Raw storage (row-major).
  const std::vector<double>& data() const { return data_; }

  /// \brief this * other. Requires cols() == other.rows().
  Matrix Multiply(const Matrix& other) const;

  /// \brief Transpose copy.
  Matrix Transposed() const;

  /// \brief this * this^T (symmetric Gram matrix of the rows).
  Matrix GramOfRows() const;

  /// \brief Copy of row r.
  std::vector<double> Row(size_t r) const;

  /// \brief Copy of column c.
  std::vector<double> Col(size_t c) const;

  /// \brief Frobenius norm.
  double FrobeniusNorm() const;

  /// \brief Max |a_ij - b_ij|; requires equal shapes.
  double MaxAbsDiff(const Matrix& other) const;

  /// \brief Human-readable dump for debugging/tests.
  std::string ToString(int precision = 3) const;

 private:
  size_t rows_;
  size_t cols_;
  std::vector<double> data_;
};

/// \brief Dot product of equal-length dense vectors.
double Dot(const std::vector<double>& a, const std::vector<double>& b);

/// \brief Euclidean norm.
double Norm(const std::vector<double>& v);

/// \brief Cosine similarity of dense vectors; 0 if either has zero norm.
double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b);

}  // namespace la
}  // namespace wikimatch

#endif  // WIKIMATCH_LA_MATRIX_H_
