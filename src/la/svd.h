// Singular value decomposition engines for LSI (Deerwester et al. 1990,
// applied to attribute/infobox occurrence matrices per Section 3.2 of the
// paper).
//
// Three routes, all deterministic:
//  * JacobiEigenSymmetric — cyclic Jacobi eigensolver for symmetric
//    matrices; the building block of the other two.
//  * ComputeSvd — exact thin SVD via the Gram matrix of the shorter side.
//    Occurrence matrices are short-and-wide (tens-to-hundreds of attributes
//    x thousands of dual infoboxes), so the Gram matrix is small.
//  * ComputeTruncatedSvd — rank-f truncation, keeping the f largest
//    singular triplets; this is LSI's dimensionality reduction.

#ifndef WIKIMATCH_LA_SVD_H_
#define WIKIMATCH_LA_SVD_H_

#include <cstddef>
#include <vector>

#include "la/matrix.h"
#include "util/result.h"

namespace wikimatch {
namespace la {

/// \brief Eigen-decomposition of a symmetric matrix.
struct EigenDecomposition {
  /// Eigenvalues, descending.
  std::vector<double> values;
  /// Column k of `vectors` is the eigenvector for values[k].
  Matrix vectors;
};

/// \brief Cyclic Jacobi eigensolver.
///
/// \param a symmetric matrix (symmetry is enforced by averaging).
/// \param max_sweeps upper bound on full Jacobi sweeps.
/// \param tol convergence threshold on the off-diagonal Frobenius norm,
///        relative to the matrix norm.
util::Result<EigenDecomposition> JacobiEigenSymmetric(const Matrix& a,
                                                      int max_sweeps = 64,
                                                      double tol = 1e-12);

/// \brief Thin SVD A = U S V^T.
struct SvdResult {
  Matrix u;                           ///< rows(A) x k, orthonormal columns
  std::vector<double> singular_values;  ///< k values, descending, >= 0
  Matrix v;                           ///< cols(A) x k, orthonormal columns

  /// \brief Reconstructs U S V^T (for testing).
  Matrix Reconstruct() const;

  /// \brief Row i of U scaled by the singular values — the LSI "concept
  /// space" representation of row entity i when A is row-entity x document.
  std::vector<double> ScaledRowVector(size_t i) const;
};

/// \brief Exact thin SVD of an arbitrary dense matrix.
///
/// Internally eigen-decomposes the Gram matrix of the shorter dimension;
/// singular values below `rank_tol` times the largest are dropped.
util::Result<SvdResult> ComputeSvd(const Matrix& a, double rank_tol = 1e-7);

/// \brief Rank-f truncated SVD (the f largest triplets).
///
/// If `f` is zero or exceeds the numerical rank, the full thin SVD is
/// returned.
util::Result<SvdResult> ComputeTruncatedSvd(const Matrix& a, size_t f,
                                            double rank_tol = 1e-7);

}  // namespace la
}  // namespace wikimatch

#endif  // WIKIMATCH_LA_SVD_H_
