#include "la/matrix.h"

#include <algorithm>
#include <cmath>
#include <sstream>

namespace wikimatch {
namespace la {

Matrix Matrix::FromRows(const std::vector<std::vector<double>>& rows) {
  if (rows.empty()) return Matrix();
  Matrix m(rows.size(), rows[0].size());
  for (size_t r = 0; r < rows.size(); ++r) {
    assert(rows[r].size() == m.cols_);
    for (size_t c = 0; c < m.cols_; ++c) m(r, c) = rows[r][c];
  }
  return m;
}

Matrix Matrix::Identity(size_t n) {
  Matrix m(n, n);
  for (size_t i = 0; i < n; ++i) m(i, i) = 1.0;
  return m;
}

Matrix Matrix::Multiply(const Matrix& other) const {
  assert(cols_ == other.rows_);
  Matrix out(rows_, other.cols_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t k = 0; k < cols_; ++k) {
      double aik = (*this)(i, k);
      if (aik == 0.0) continue;
      for (size_t j = 0; j < other.cols_; ++j) {
        out(i, j) += aik * other(k, j);
      }
    }
  }
  return out;
}

Matrix Matrix::Transposed() const {
  Matrix out(cols_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = 0; j < cols_; ++j) out(j, i) = (*this)(i, j);
  }
  return out;
}

Matrix Matrix::GramOfRows() const {
  Matrix g(rows_, rows_);
  for (size_t i = 0; i < rows_; ++i) {
    for (size_t j = i; j < rows_; ++j) {
      double s = 0.0;
      const double* ri = &data_[i * cols_];
      const double* rj = &data_[j * cols_];
      for (size_t k = 0; k < cols_; ++k) s += ri[k] * rj[k];
      g(i, j) = s;
      g(j, i) = s;
    }
  }
  return g;
}

std::vector<double> Matrix::Row(size_t r) const {
  assert(r < rows_);
  return std::vector<double>(data_.begin() + static_cast<long>(r * cols_),
                             data_.begin() + static_cast<long>((r + 1) * cols_));
}

std::vector<double> Matrix::Col(size_t c) const {
  assert(c < cols_);
  std::vector<double> out(rows_);
  for (size_t r = 0; r < rows_; ++r) out[r] = (*this)(r, c);
  return out;
}

double Matrix::FrobeniusNorm() const {
  double s = 0.0;
  for (double v : data_) s += v * v;
  return std::sqrt(s);
}

double Matrix::MaxAbsDiff(const Matrix& other) const {
  assert(rows_ == other.rows_ && cols_ == other.cols_);
  double best = 0.0;
  for (size_t i = 0; i < data_.size(); ++i) {
    best = std::max(best, std::fabs(data_[i] - other.data_[i]));
  }
  return best;
}

std::string Matrix::ToString(int precision) const {
  std::ostringstream os;
  os.precision(precision);
  os << std::fixed;
  for (size_t r = 0; r < rows_; ++r) {
    os << "[";
    for (size_t c = 0; c < cols_; ++c) {
      if (c > 0) os << ", ";
      os << (*this)(r, c);
    }
    os << "]\n";
  }
  return os.str();
}

double Dot(const std::vector<double>& a, const std::vector<double>& b) {
  assert(a.size() == b.size());
  double s = 0.0;
  for (size_t i = 0; i < a.size(); ++i) s += a[i] * b[i];
  return s;
}

double Norm(const std::vector<double>& v) { return std::sqrt(Dot(v, v)); }

double CosineSimilarity(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double na = Norm(a);
  double nb = Norm(b);
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(a, b) / (na * nb);
}

}  // namespace la
}  // namespace wikimatch
