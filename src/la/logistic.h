// Logistic regression trained by mini-batch gradient descent with L2
// regularization — the learning substrate for the Ziggurat-style
// self-supervised baseline (Adar et al., WSDM 2009).

#ifndef WIKIMATCH_LA_LOGISTIC_H_
#define WIKIMATCH_LA_LOGISTIC_H_

#include <cstddef>
#include <vector>

#include "util/result.h"
#include "util/rng.h"

namespace wikimatch {
namespace la {

/// \brief Training options.
struct LogisticOptions {
  double learning_rate = 0.1;
  double l2 = 1e-3;
  int epochs = 200;
  size_t batch_size = 32;
  uint64_t seed = 0x10615;
  /// Standardize features to zero mean / unit variance before training
  /// (the scaler is stored and applied at prediction time).
  bool standardize = true;
};

/// \brief One labeled example.
struct LabeledExample {
  std::vector<double> features;
  bool label = false;
};

/// \brief Binary logistic-regression classifier.
class LogisticRegression {
 public:
  LogisticRegression() = default;

  /// \brief Trains on `examples`. Fails when examples are empty, have
  /// inconsistent dimensionality, or contain a single class.
  util::Status Train(const std::vector<LabeledExample>& examples,
                     const LogisticOptions& options = {});

  /// \brief P(label = true | features). Requires a trained model.
  double Predict(const std::vector<double>& features) const;

  /// \brief True iff Train succeeded.
  bool trained() const { return !weights_.empty(); }

  /// \brief Learned weights (post-standardization space), bias last.
  const std::vector<double>& weights() const { return weights_; }

 private:
  std::vector<double> weights_;  // dim weights + bias at index dim
  std::vector<double> mean_;
  std::vector<double> stddev_;
};

}  // namespace la
}  // namespace wikimatch

#endif  // WIKIMATCH_LA_LOGISTIC_H_
