#include "la/sparse_vector.h"

#include <cmath>

namespace wikimatch {
namespace la {

double SparseVector::Norm() const {
  double s = 0.0;
  for (const auto& [id, v] : entries_) s += v * v;
  return std::sqrt(s);
}

double SparseVector::Sum() const {
  double s = 0.0;
  for (const auto& [id, v] : entries_) s += v;
  return s;
}

double SparseVector::Dot(const SparseVector& other) const {
  // Iterate over the smaller map.
  const SparseVector* small = this;
  const SparseVector* big = &other;
  if (small->entries_.size() > big->entries_.size()) std::swap(small, big);
  double s = 0.0;
  for (const auto& [id, v] : small->entries_) {
    auto it = big->entries_.find(id);
    if (it != big->entries_.end()) s += v * it->second;
  }
  return s;
}

double SparseVector::Cosine(const SparseVector& other) const {
  double na = Norm();
  double nb = other.Norm();
  if (na == 0.0 || nb == 0.0) return 0.0;
  return Dot(other) / (na * nb);
}

SparseVector SparseVector::Normalized() const {
  double n = Norm();
  SparseVector out;
  if (n == 0.0) return out;
  for (const auto& [id, v] : entries_) out.Set(id, v / n);
  return out;
}

uint32_t TermDictionary::GetOrAdd(const std::string& term) {
  auto it = index_.find(term);
  if (it != index_.end()) return it->second;
  uint32_t id = static_cast<uint32_t>(terms_.size());
  terms_.push_back(term);
  index_.emplace(term, id);
  return id;
}

uint32_t TermDictionary::Lookup(const std::string& term) const {
  auto it = index_.find(term);
  return it == index_.end() ? kNotFound : it->second;
}

}  // namespace la
}  // namespace wikimatch
