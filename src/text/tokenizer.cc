#include "text/tokenizer.h"

#include "text/normalize.h"
#include "util/utf8.h"

namespace wikimatch {
namespace text {

namespace {

bool IsLetter(char32_t cp) {
  if ((cp >= U'a' && cp <= U'z') || (cp >= U'A' && cp <= U'Z')) return true;
  // Latin-1 Supplement letters.
  if (cp >= 0x00C0 && cp <= 0x00FF && cp != 0x00D7 && cp != 0x00F7)
    return true;
  // Latin Extended-A/B (subset) and Extended Additional.
  if (cp >= 0x0100 && cp <= 0x024F) return true;
  if (cp >= 0x1E00 && cp <= 0x1EFF) return true;
  return false;
}

bool IsDigit(char32_t cp) { return cp >= U'0' && cp <= U'9'; }

}  // namespace

std::vector<std::string> Tokenize(std::string_view s,
                                  const TokenizerOptions& opts) {
  std::vector<std::string> tokens;
  std::string current;
  size_t current_len = 0;  // code points
  enum class Kind { kNone, kWord, kNumber } kind = Kind::kNone;

  auto flush = [&]() {
    if (kind != Kind::kNone && current_len >= opts.min_token_length) {
      tokens.push_back(current);
    }
    current.clear();
    current_len = 0;
    kind = Kind::kNone;
  };

  size_t pos = 0;
  while (pos < s.size()) {
    char32_t cp = util::DecodeUtf8Char(s, &pos);
    Kind cp_kind = Kind::kNone;
    if (IsLetter(cp)) {
      cp_kind = Kind::kWord;
    } else if (opts.keep_numbers && IsDigit(cp)) {
      cp_kind = Kind::kNumber;
    }
    if (cp_kind == Kind::kNone || (kind != Kind::kNone && cp_kind != kind)) {
      flush();
    }
    if (cp_kind != Kind::kNone) {
      kind = cp_kind;
      char32_t out_cp = cp;
      if (cp_kind == Kind::kWord) {
        if (opts.lowercase) out_cp = ToLowerChar(out_cp);
        if (opts.fold_diacritics) out_cp = FoldDiacriticsChar(out_cp);
      }
      util::AppendUtf8(out_cp, &current);
      ++current_len;
    }
  }
  flush();
  return tokens;
}

std::vector<std::string> CharNgrams(std::string_view s, size_t n) {
  std::vector<char32_t> cps = util::DecodeUtf8(s);
  std::vector<std::string> grams;
  if (cps.empty() || n == 0) return grams;
  if (cps.size() <= n) {
    grams.push_back(util::EncodeUtf8(cps));
    return grams;
  }
  grams.reserve(cps.size() - n + 1);
  for (size_t i = 0; i + n <= cps.size(); ++i) {
    std::string g;
    for (size_t k = 0; k < n; ++k) util::AppendUtf8(cps[i + k], &g);
    grams.push_back(std::move(g));
  }
  return grams;
}

}  // namespace text
}  // namespace wikimatch
