// String similarity measures over UTF-8 strings (code-point granularity).
//
// These power the COMA++-style name matcher baseline (Section 4.1 / Figure 7
// of the paper) and are deliberately the kind of syntactic measures the
// paper shows to be insufficient for cross-language matching.

#ifndef WIKIMATCH_TEXT_STRING_SIMILARITY_H_
#define WIKIMATCH_TEXT_STRING_SIMILARITY_H_

#include <string_view>

namespace wikimatch {
namespace text {

/// \brief Levenshtein edit distance (unit costs) in code points.
size_t LevenshteinDistance(std::string_view a, std::string_view b);

/// \brief Normalized Levenshtein similarity: 1 - dist / max(|a|,|b|).
///
/// Two empty strings have similarity 1.
double LevenshteinSimilarity(std::string_view a, std::string_view b);

/// \brief Jaro similarity in [0, 1].
double JaroSimilarity(std::string_view a, std::string_view b);

/// \brief Jaro-Winkler similarity with standard prefix scale 0.1, prefix
/// length capped at 4.
double JaroWinklerSimilarity(std::string_view a, std::string_view b);

/// \brief Dice coefficient over character n-gram multisets.
double NgramDice(std::string_view a, std::string_view b, size_t n);

/// \brief Jaccard coefficient over character n-gram sets.
double NgramJaccard(std::string_view a, std::string_view b, size_t n);

/// \brief Trigram Dice — the paper's "n-gram similarity" default.
inline double TrigramSimilarity(std::string_view a, std::string_view b) {
  return NgramDice(a, b, 3);
}

/// \brief Length of the longest common substring in code points.
size_t LongestCommonSubstring(std::string_view a, std::string_view b);

/// \brief Normalized LCS similarity: lcs / min(|a|,|b|); empty -> 0.
double LcsSimilarity(std::string_view a, std::string_view b);

/// \brief Length of the common prefix in code points.
size_t CommonPrefixLength(std::string_view a, std::string_view b);

/// \brief Monge-Elkan similarity: tokenizes both strings and averages, for
/// each token of `a`, its best Jaro-Winkler score against `b`'s tokens.
/// The standard measure for multi-word schema labels ("data de nascimento"
/// vs "date of birth"); asymmetric by definition, so the symmetric mean of
/// both directions is returned.
double MongeElkanSimilarity(std::string_view a, std::string_view b);

}  // namespace text
}  // namespace wikimatch

#endif  // WIKIMATCH_TEXT_STRING_SIMILARITY_H_
