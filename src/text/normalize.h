// Unicode-aware normalization for attribute names, values, and titles.
//
// Covers the Latin repertoire used by English, Portuguese, and Vietnamese:
// simple case folding for ASCII, Latin-1 Supplement, Latin Extended-A, and
// Latin Extended Additional (the Vietnamese block), plus diacritics folding
// to ASCII base letters. Full Unicode tables are not required for this
// corpus; the mapping here is exact for the languages under study.

#ifndef WIKIMATCH_TEXT_NORMALIZE_H_
#define WIKIMATCH_TEXT_NORMALIZE_H_

#include <string>
#include <string_view>

namespace wikimatch {
namespace text {

/// \brief Lowercases one code point (ASCII + Latin blocks incl. Vietnamese).
char32_t ToLowerChar(char32_t cp);

/// \brief Strips diacritics from one code point, returning the ASCII base
/// letter (e.g. U+00E9 'é' -> 'e', U+1EC5 'ễ' -> 'e'); non-letters and
/// unmapped code points pass through.
char32_t FoldDiacriticsChar(char32_t cp);

/// \brief Lowercases a UTF-8 string.
std::string ToLower(std::string_view s);

/// \brief Lowercases and strips diacritics from a UTF-8 string.
std::string FoldDiacritics(std::string_view s);

/// \brief Canonical attribute-name form: lowercase, underscores/hyphens to
/// spaces, whitespace collapsed, trimmed. Diacritics are preserved (they are
/// meaningful in attribute names like `direção`).
std::string NormalizeAttributeName(std::string_view s);

/// \brief Canonical value form: lowercase, whitespace collapsed, trimmed.
std::string NormalizeValue(std::string_view s);

/// \brief Canonical article-title form per MediaWiki: first letter
/// capitalized is ignored (we lowercase), underscores become spaces,
/// whitespace collapsed.
std::string NormalizeTitle(std::string_view s);

}  // namespace text
}  // namespace wikimatch

#endif  // WIKIMATCH_TEXT_NORMALIZE_H_
