#include "text/string_similarity.h"

#include <algorithm>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "text/tokenizer.h"
#include "util/utf8.h"

namespace wikimatch {
namespace text {

size_t LevenshteinDistance(std::string_view a, std::string_view b) {
  std::vector<char32_t> ca = util::DecodeUtf8(a);
  std::vector<char32_t> cb = util::DecodeUtf8(b);
  if (ca.empty()) return cb.size();
  if (cb.empty()) return ca.size();
  // Two-row dynamic program.
  std::vector<size_t> prev(cb.size() + 1);
  std::vector<size_t> cur(cb.size() + 1);
  for (size_t j = 0; j <= cb.size(); ++j) prev[j] = j;
  for (size_t i = 1; i <= ca.size(); ++i) {
    cur[0] = i;
    for (size_t j = 1; j <= cb.size(); ++j) {
      size_t sub = prev[j - 1] + (ca[i - 1] == cb[j - 1] ? 0 : 1);
      cur[j] = std::min({prev[j] + 1, cur[j - 1] + 1, sub});
    }
    std::swap(prev, cur);
  }
  return prev[cb.size()];
}

double LevenshteinSimilarity(std::string_view a, std::string_view b) {
  size_t la = util::Utf8Length(a);
  size_t lb = util::Utf8Length(b);
  size_t longest = std::max(la, lb);
  if (longest == 0) return 1.0;
  return 1.0 - static_cast<double>(LevenshteinDistance(a, b)) /
                   static_cast<double>(longest);
}

double JaroSimilarity(std::string_view a, std::string_view b) {
  std::vector<char32_t> ca = util::DecodeUtf8(a);
  std::vector<char32_t> cb = util::DecodeUtf8(b);
  if (ca.empty() && cb.empty()) return 1.0;
  if (ca.empty() || cb.empty()) return 0.0;
  size_t window =
      std::max(ca.size(), cb.size()) / 2 > 0
          ? std::max(ca.size(), cb.size()) / 2 - 1
          : 0;
  std::vector<bool> a_matched(ca.size(), false);
  std::vector<bool> b_matched(cb.size(), false);
  size_t matches = 0;
  for (size_t i = 0; i < ca.size(); ++i) {
    size_t lo = i > window ? i - window : 0;
    size_t hi = std::min(cb.size(), i + window + 1);
    for (size_t j = lo; j < hi; ++j) {
      if (!b_matched[j] && ca[i] == cb[j]) {
        a_matched[i] = true;
        b_matched[j] = true;
        ++matches;
        break;
      }
    }
  }
  if (matches == 0) return 0.0;
  // Count transpositions among matched characters.
  size_t transpositions = 0;
  size_t j = 0;
  for (size_t i = 0; i < ca.size(); ++i) {
    if (!a_matched[i]) continue;
    while (!b_matched[j]) ++j;
    if (ca[i] != cb[j]) ++transpositions;
    ++j;
  }
  double m = static_cast<double>(matches);
  return (m / ca.size() + m / cb.size() + (m - transpositions / 2.0) / m) /
         3.0;
}

double JaroWinklerSimilarity(std::string_view a, std::string_view b) {
  double jaro = JaroSimilarity(a, b);
  size_t prefix = std::min<size_t>(CommonPrefixLength(a, b), 4);
  return jaro + 0.1 * static_cast<double>(prefix) * (1.0 - jaro);
}

double NgramDice(std::string_view a, std::string_view b, size_t n) {
  std::vector<std::string> ga = CharNgrams(a, n);
  std::vector<std::string> gb = CharNgrams(b, n);
  if (ga.empty() && gb.empty()) return 1.0;
  if (ga.empty() || gb.empty()) return 0.0;
  std::map<std::string, size_t> counts;
  for (const auto& g : ga) counts[g]++;
  size_t shared = 0;
  for (const auto& g : gb) {
    auto it = counts.find(g);
    if (it != counts.end() && it->second > 0) {
      --it->second;
      ++shared;
    }
  }
  return 2.0 * static_cast<double>(shared) /
         static_cast<double>(ga.size() + gb.size());
}

double NgramJaccard(std::string_view a, std::string_view b, size_t n) {
  std::vector<std::string> ga = CharNgrams(a, n);
  std::vector<std::string> gb = CharNgrams(b, n);
  std::set<std::string> sa(ga.begin(), ga.end());
  std::set<std::string> sb(gb.begin(), gb.end());
  if (sa.empty() && sb.empty()) return 1.0;
  size_t inter = 0;
  for (const auto& g : sa) inter += sb.count(g);
  size_t uni = sa.size() + sb.size() - inter;
  if (uni == 0) return 0.0;
  return static_cast<double>(inter) / static_cast<double>(uni);
}

size_t LongestCommonSubstring(std::string_view a, std::string_view b) {
  std::vector<char32_t> ca = util::DecodeUtf8(a);
  std::vector<char32_t> cb = util::DecodeUtf8(b);
  if (ca.empty() || cb.empty()) return 0;
  std::vector<size_t> prev(cb.size() + 1, 0);
  std::vector<size_t> cur(cb.size() + 1, 0);
  size_t best = 0;
  for (size_t i = 1; i <= ca.size(); ++i) {
    for (size_t j = 1; j <= cb.size(); ++j) {
      if (ca[i - 1] == cb[j - 1]) {
        cur[j] = prev[j - 1] + 1;
        best = std::max(best, cur[j]);
      } else {
        cur[j] = 0;
      }
    }
    std::swap(prev, cur);
  }
  return best;
}

double LcsSimilarity(std::string_view a, std::string_view b) {
  size_t la = util::Utf8Length(a);
  size_t lb = util::Utf8Length(b);
  size_t shortest = std::min(la, lb);
  if (shortest == 0) return 0.0;
  return static_cast<double>(LongestCommonSubstring(a, b)) /
         static_cast<double>(shortest);
}

namespace {

// One direction of Monge-Elkan: mean over a's tokens of the best
// Jaro-Winkler match in b's tokens.
double MongeElkanDirected(const std::vector<std::string>& ta,
                          const std::vector<std::string>& tb) {
  if (ta.empty() || tb.empty()) return 0.0;
  double sum = 0.0;
  for (const auto& wa : ta) {
    double best = 0.0;
    for (const auto& wb : tb) {
      best = std::max(best, JaroWinklerSimilarity(wa, wb));
    }
    sum += best;
  }
  return sum / static_cast<double>(ta.size());
}

}  // namespace

double MongeElkanSimilarity(std::string_view a, std::string_view b) {
  std::vector<std::string> ta = Tokenize(a);
  std::vector<std::string> tb = Tokenize(b);
  if (ta.empty() && tb.empty()) return 1.0;
  return 0.5 * (MongeElkanDirected(ta, tb) + MongeElkanDirected(tb, ta));
}

size_t CommonPrefixLength(std::string_view a, std::string_view b) {
  std::vector<char32_t> ca = util::DecodeUtf8(a);
  std::vector<char32_t> cb = util::DecodeUtf8(b);
  size_t n = std::min(ca.size(), cb.size());
  size_t i = 0;
  while (i < n && ca[i] == cb[i]) ++i;
  return i;
}

}  // namespace text
}  // namespace wikimatch
