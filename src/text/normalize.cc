#include "text/normalize.h"

#include <cctype>

#include "util/string_util.h"
#include "util/utf8.h"

namespace wikimatch {
namespace text {

char32_t ToLowerChar(char32_t cp) {
  // ASCII.
  if (cp >= U'A' && cp <= U'Z') return cp + 0x20;
  // Latin-1 Supplement uppercase (À..Þ except ×).
  if (cp >= 0x00C0 && cp <= 0x00DE && cp != 0x00D7) return cp + 0x20;
  // Latin Extended-A and Extended Additional: cased pairs alternate
  // even (upper) / odd (lower) throughout the ranges we care about.
  if ((cp >= 0x0100 && cp <= 0x0177) || (cp >= 0x1E00 && cp <= 0x1EFF)) {
    return (cp % 2 == 0) ? cp + 1 : cp;
  }
  // Ÿ and the irregular tail of Extended-A.
  if (cp == 0x0178) return 0x00FF;
  if (cp == 0x0179 || cp == 0x017B || cp == 0x017D) return cp + 1;
  // Vietnamese horn letters in Extended-B: Ơ, Ư.
  if (cp == 0x01A0) return 0x01A1;
  if (cp == 0x01AF) return 0x01B0;
  return cp;
}

namespace {

// Base letter for Latin-1 Supplement lowercase (0x00DF..0x00FF).
char32_t FoldLatin1(char32_t cp) {
  switch (cp) {
    case 0x00E0: case 0x00E1: case 0x00E2: case 0x00E3:
    case 0x00E4: case 0x00E5:
      return U'a';
    case 0x00E6:
      return U'a';  // æ -> a (approximation; not used in Pt/Vn).
    case 0x00E7:
      return U'c';
    case 0x00E8: case 0x00E9: case 0x00EA: case 0x00EB:
      return U'e';
    case 0x00EC: case 0x00ED: case 0x00EE: case 0x00EF:
      return U'i';
    case 0x00F0:
      return U'd';
    case 0x00F1:
      return U'n';
    case 0x00F2: case 0x00F3: case 0x00F4: case 0x00F5: case 0x00F6:
    case 0x00F8:
      return U'o';
    case 0x00F9: case 0x00FA: case 0x00FB: case 0x00FC:
      return U'u';
    case 0x00FD: case 0x00FF:
      return U'y';
    case 0x00DF:
      return U's';  // ß -> s (approximation).
    default:
      return cp;
  }
}

// Base letter for the Vietnamese block (Latin Extended Additional,
// 0x1EA0..0x1EF9, lowercase forms are odd code points).
char32_t FoldVietnamese(char32_t cp) {
  if (cp >= 0x1EA1 && cp <= 0x1EB7) return U'a';
  if (cp >= 0x1EB9 && cp <= 0x1EC7) return U'e';
  if (cp == 0x1EC9 || cp == 0x1ECB) return U'i';
  if (cp >= 0x1ECD && cp <= 0x1EE3) return U'o';
  if (cp >= 0x1EE5 && cp <= 0x1EF1) return U'u';
  if (cp >= 0x1EF3 && cp <= 0x1EF9) return U'y';
  return cp;
}

// Base letter for Latin Extended-A lowercase forms used in Pt/Vn and common
// European names.
char32_t FoldExtendedA(char32_t cp) {
  if (cp == 0x0101 || cp == 0x0103 || cp == 0x0105) return U'a';
  if (cp == 0x0107 || cp == 0x0109 || cp == 0x010B || cp == 0x010D) return U'c';
  if (cp == 0x010F || cp == 0x0111) return U'd';  // includes Vietnamese đ
  if (cp >= 0x0113 && cp <= 0x011B && cp % 2 == 1) return U'e';
  if (cp >= 0x011D && cp <= 0x0123 && cp % 2 == 1) return U'g';
  if (cp == 0x0125 || cp == 0x0127) return U'h';
  if (cp >= 0x0129 && cp <= 0x0131 && cp % 2 == 1) return U'i';
  if (cp == 0x0135) return U'j';
  if (cp == 0x0137) return U'k';
  if (cp >= 0x013A && cp <= 0x0142) return U'l';
  if (cp == 0x0144 || cp == 0x0146 || cp == 0x0148) return U'n';
  if (cp == 0x014D || cp == 0x014F || cp == 0x0151) return U'o';
  if (cp == 0x0155 || cp == 0x0157 || cp == 0x0159) return U'r';
  if (cp == 0x015B || cp == 0x015D || cp == 0x015F || cp == 0x0161) return U's';
  if (cp == 0x0163 || cp == 0x0165 || cp == 0x0167) return U't';
  if (cp >= 0x0169 && cp <= 0x0173 && cp % 2 == 1) return U'u';
  if (cp == 0x0175) return U'w';
  if (cp == 0x0177) return U'y';
  if (cp == 0x017A || cp == 0x017C || cp == 0x017E) return U'z';
  return cp;
}

}  // namespace

char32_t FoldDiacriticsChar(char32_t cp) {
  cp = ToLowerChar(cp);
  if (cp < 0x80) return cp;
  if (cp <= 0x00FF) return FoldLatin1(cp);
  if (cp <= 0x017F) return FoldExtendedA(cp);
  if (cp == 0x01A1) return U'o';  // ơ
  if (cp == 0x01B0) return U'u';  // ư
  if (cp >= 0x1E00 && cp <= 0x1EFF) return FoldVietnamese(cp);
  return cp;
}

std::string ToLower(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    char32_t cp = util::DecodeUtf8Char(s, &pos);
    util::AppendUtf8(ToLowerChar(cp), &out);
  }
  return out;
}

std::string FoldDiacritics(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  size_t pos = 0;
  while (pos < s.size()) {
    char32_t cp = util::DecodeUtf8Char(s, &pos);
    util::AppendUtf8(FoldDiacriticsChar(cp), &out);
  }
  return out;
}

std::string NormalizeAttributeName(std::string_view s) {
  std::string replaced = util::ReplaceAll(s, "_", " ");
  replaced = util::ReplaceAll(replaced, "-", " ");
  return util::CollapseWhitespace(ToLower(replaced));
}

std::string NormalizeValue(std::string_view s) {
  return util::CollapseWhitespace(ToLower(s));
}

std::string NormalizeTitle(std::string_view s) {
  std::string replaced = util::ReplaceAll(s, "_", " ");
  return util::CollapseWhitespace(ToLower(replaced));
}

}  // namespace text
}  // namespace wikimatch
