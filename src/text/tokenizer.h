// Unicode-aware tokenization of infobox values and titles.

#ifndef WIKIMATCH_TEXT_TOKENIZER_H_
#define WIKIMATCH_TEXT_TOKENIZER_H_

#include <string>
#include <string_view>
#include <vector>

namespace wikimatch {
namespace text {

/// \brief Options controlling Tokenize().
struct TokenizerOptions {
  /// Lowercase tokens.
  bool lowercase = true;
  /// Strip diacritics from tokens (off by default — diacritics are
  /// meaningful in Pt/Vn values).
  bool fold_diacritics = false;
  /// Keep digit runs as tokens.
  bool keep_numbers = true;
  /// Drop tokens shorter than this many code points.
  size_t min_token_length = 1;
};

/// \brief Splits UTF-8 text into word tokens.
///
/// A token is a maximal run of letters (any code point >= 'a' after case
/// folding that is alphabetic in the Latin repertoire, i.e. not punctuation,
/// whitespace, or symbol) or, when `keep_numbers`, a maximal run of ASCII
/// digits. Punctuation separates tokens.
std::vector<std::string> Tokenize(std::string_view s,
                                  const TokenizerOptions& opts = {});

/// \brief Character n-grams of a UTF-8 string (code-point granularity).
///
/// Strings shorter than `n` yield a single n-gram equal to the whole string
/// (if non-empty).
std::vector<std::string> CharNgrams(std::string_view s, size_t n);

}  // namespace text
}  // namespace wikimatch

#endif  // WIKIMATCH_TEXT_TOKENIZER_H_
