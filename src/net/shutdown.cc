#include "net/shutdown.h"

#include <csignal>
#include <cstdint>
#include <cstring>

#include <sys/eventfd.h>
#include <unistd.h>

namespace wikimatch {
namespace net {
namespace {

// The flag signal handlers deliver to. Written only by
// InstallShutdownHandlers (before any signal can race it) and read from
// handler context, so a lock-free atomic pointer suffices.
std::atomic<ShutdownFlag*> g_signal_flag{nullptr};

void OnShutdownSignal(int /*signo*/) {
  ShutdownFlag* flag = g_signal_flag.load(std::memory_order_acquire);
  if (flag != nullptr) flag->Request();
}

}  // namespace

ShutdownFlag::ShutdownFlag()
    : wake_fd_(::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC)) {}

ShutdownFlag::~ShutdownFlag() {
  if (g_signal_flag.load(std::memory_order_acquire) == this) {
    g_signal_flag.store(nullptr, std::memory_order_release);
  }
  if (wake_fd_ >= 0) ::close(wake_fd_);
}

void ShutdownFlag::Request() {
  requested_.store(true, std::memory_order_release);
  if (wake_fd_ >= 0) {
    const uint64_t one = 1;
    // Best effort: EAGAIN means the counter is already nonzero, which is
    // exactly the state we want. write(2) is async-signal-safe.
    ssize_t ignored = ::write(wake_fd_, &one, sizeof(one));
    (void)ignored;
  }
}

util::Status InstallShutdownHandlers(ShutdownFlag* flag) {
  if (flag == nullptr || flag->wake_fd() < 0) {
    return util::Status::InvalidArgument(
        "shutdown flag missing or its eventfd failed to open");
  }
  g_signal_flag.store(flag, std::memory_order_release);
  struct sigaction action;
  std::memset(&action, 0, sizeof(action));
  action.sa_handler = OnShutdownSignal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;  // no SA_RESTART: blocking reads must see EINTR
  if (::sigaction(SIGINT, &action, nullptr) != 0 ||
      ::sigaction(SIGTERM, &action, nullptr) != 0) {
    return util::Status::IoError("sigaction(SIGINT/SIGTERM) failed");
  }
  return util::Status::OK();
}

}  // namespace net
}  // namespace wikimatch
