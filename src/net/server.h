// net::Server — the async TCP serving layer. Speaks the serve::protocol
// line protocol over sockets and dispatches to a thread-safe
// serve::MatchService, owning the full production-concurrency story:
//
//  - Non-blocking, edge-triggered epoll event loops (one epoll per worker
//    thread; the listener is registered in every loop with EPOLLEXCLUSIVE
//    so accepts spread across threads without a thundering herd).
//  - Per-connection read/write buffers with partial-line reassembly via
//    serve::LineSplitter — requests may arrive a byte at a time or as a
//    pipelined burst, and responses are written in request order.
//  - Backpressure: when a connection's unflushed write buffer exceeds
//    `write_buffer_limit`, the server stops *reading* from it (drops
//    EPOLLIN) until the buffer drains, so a slow reader bounds its own
//    memory instead of ballooning the server.
//  - Load shedding: past `max_connections` active connections or a
//    `max_pending_requests` in-flight watermark, new accepts are answered
//    with one "err busy ..." line and closed immediately.
//  - Idle timeout: connections quiet for `idle_timeout_ms` are closed.
//  - Graceful drain: when the shutdown flag fires (SIGINT/SIGTERM via
//    net::InstallShutdownHandlers, or Shutdown()), the listener stops
//    accepting, every request already received in full is answered, write
//    buffers are flushed (bounded by `drain_timeout_ms`), and Run()
//    returns cleanly.
//
// Each connection is owned by exactly one event-loop thread, so per
// connection state needs no locks; cross-thread state is atomics plus the
// internally synchronized MatchService. Hot reload needs nothing special
// here: Handle() pins a generation per request (see match_service.h), so
// a `reload` racing live traffic can neither drop nor mix responses —
// tests/net_server_test.cc stresses exactly that under TSan.

#ifndef WIKIMATCH_NET_SERVER_H_
#define WIKIMATCH_NET_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "net/shutdown.h"
#include "serve/match_service.h"
#include "serve/protocol.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace wikimatch {
namespace net {

/// \brief Listener and event-loop configuration.
struct ServerOptions {
  /// Address to bind ("127.0.0.1" for tests/bench, "0.0.0.0" to serve).
  std::string bind_address = "127.0.0.1";
  /// TCP port; 0 binds an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Event-loop threads; 0 = one per core (util::DefaultThreads()).
  size_t num_threads = 1;
  /// Active-connection cap; accepts beyond it are shed with "err busy".
  size_t max_connections = 1024;
  /// Shed accepts while this many requests are parsed-but-unanswered
  /// across all connections; 0 sheds every accept (maintenance mode).
  size_t max_pending_requests = 4096;
  /// Unflushed response bytes per connection before the server stops
  /// reading from that connection (backpressure), resuming on drain.
  size_t write_buffer_limit = 1 << 20;
  /// Per-line cap during reassembly (oversized lines get a protocol
  /// error and are skipped to the next newline).
  size_t max_line_bytes = serve::kMaxRequestBytes;
  /// Close connections idle this long; 0 disables the timeout.
  int idle_timeout_ms = 0;
  /// Drain budget after shutdown: flushing in-flight replies stops and
  /// remaining connections are force-closed past this deadline.
  int drain_timeout_ms = 5000;
  /// When > 0, sets SO_SNDBUF on accepted sockets (tests shrink it to
  /// force backpressure deterministically).
  int send_buffer_bytes = 0;
};

/// \brief Monotonic counters, aggregated across event loops.
struct ServerStats {
  uint64_t accepted = 0;         ///< connections accepted (incl. shed)
  uint64_t shed = 0;             ///< accepts answered "err busy" + closed
  uint64_t requests = 0;         ///< lines dispatched to the service
  uint64_t protocol_errors = 0;  ///< oversized/NUL lines answered "err"
  uint64_t idle_closed = 0;      ///< connections closed by the timeout
  uint64_t backpressure_pauses = 0;  ///< times reading was paused
  uint64_t bytes_read = 0;
  uint64_t bytes_written = 0;
  size_t active_connections = 0;  ///< currently open (gauge)
};

/// \brief Epoll-based TCP front end for one MatchService.
class Server {
 public:
  /// \brief Binds and listens. `service` must outlive the server. When
  /// `shutdown` is null the server owns a private flag (tests call
  /// Shutdown()); the CLI passes the signal-installed flag so SIGINT/
  /// SIGTERM drain the socket path and the stdin path identically.
  static util::Result<std::unique_ptr<Server>> Create(
      serve::MatchService* service, const ServerOptions& options,
      ShutdownFlag* shutdown = nullptr);

  ~Server();
  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// \brief Port actually bound (resolves an ephemeral request).
  uint16_t port() const { return port_; }

  /// \brief Spawns the event-loop threads and returns.
  util::Status Start();

  /// \brief Joins the event loops (they exit after a drain completes).
  void Wait();

  /// \brief Start() + Wait(): serves until the shutdown flag fires, then
  /// drains and returns OK. This is the CLI entry point.
  util::Status Run();

  /// \brief Requests a graceful drain (same path as SIGINT/SIGTERM).
  void Shutdown() { shutdown_->Request(); }

  ServerStats Stats() const;

 private:
  struct Connection;
  struct Loop;

  Server(serve::MatchService* service, const ServerOptions& options,
         ShutdownFlag* shutdown);

  util::Status Listen();
  void LoopMain();

  // One event loop's body, split by concern; all operate on loop-owned
  // connections only (no cross-thread connection access).
  void HandleAccepts(Loop* loop);
  bool DispatchLine(Connection* conn, const std::string& line);
  void OnReadable(Loop* loop, Connection* conn);
  void OnWritable(Loop* loop, Connection* conn);
  void ProcessLines(Loop* loop, Connection* conn);
  void FlushWrites(Loop* loop, Connection* conn);
  void PauseReading(Loop* loop, Connection* conn);
  void ResumeReading(Loop* loop, Connection* conn);
  void CloseConnection(Loop* loop, Connection* conn);
  void SweepIdle(Loop* loop);
  void Drain(Loop* loop);

  serve::MatchService* service_;
  ServerOptions options_;
  ShutdownFlag* shutdown_;                  // owned_shutdown_ or external
  std::unique_ptr<ShutdownFlag> owned_shutdown_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;

  util::Mutex state_mu_;  // guards the thread handles across Start/Wait
  std::vector<std::thread> threads_ WIKIMATCH_GUARDED_BY(state_mu_);

  std::atomic<size_t> active_connections_{0};
  std::atomic<size_t> pending_requests_{0};
  std::atomic<uint64_t> accepted_{0};
  std::atomic<uint64_t> shed_{0};
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> idle_closed_{0};
  std::atomic<uint64_t> backpressure_pauses_{0};
  std::atomic<uint64_t> bytes_read_{0};
  std::atomic<uint64_t> bytes_written_{0};
};

}  // namespace net
}  // namespace wikimatch

#endif  // WIKIMATCH_NET_SERVER_H_
