#include "net/server.h"

#include <array>
#include <cerrno>
#include <chrono>
#include <cstring>
#include <unordered_map>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/socket.h>
#include <unistd.h>

#include "util/logging.h"
#include "util/parallel.h"

namespace wikimatch {
namespace net {
namespace {

using Clock = std::chrono::steady_clock;

// epoll_event.data values for the two non-connection fds. Real
// Connection pointers are aligned allocations and can never equal these.
constexpr uint64_t kListenerTag = 1;
constexpr uint64_t kWakeTag = 2;

// The one-line reply a shed accept gets before its socket is closed.
constexpr char kBusyReply[] = "err busy (server overloaded, retry later)\n";

std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}

}  // namespace

// Per-connection state, owned by exactly one event loop (never touched
// from another thread, so none of it needs a lock).
struct Server::Connection {
  Connection(int fd_in, size_t max_line_bytes)
      : fd(fd_in), splitter(max_line_bytes) {}

  int fd;
  serve::LineSplitter splitter;  // bytes read, not yet a full line
  std::string wbuf;              // responses not yet accepted by the kernel
  size_t wpos = 0;               // flushed prefix of wbuf
  bool paused = false;           // EPOLLIN dropped (backpressure)
  bool peer_eof = false;         // client half-closed; tail handled
  bool want_close = false;       // close once wbuf is flushed
  bool closed = false;           // fd closed; free at end of event
  Clock::time_point last_active;
};

// One event-loop thread's world: its epoll set and the connections it
// owns. `graveyard` defers freeing a closed connection to the end of the
// current event so no dangling pointer is touched mid-handler.
struct Server::Loop {
  int epoll_fd = -1;
  bool draining = false;
  std::unordered_map<int, std::unique_ptr<Connection>> conns;
  std::vector<std::unique_ptr<Connection>> graveyard;
  Clock::time_point last_idle_sweep;
};

util::Result<std::unique_ptr<Server>> Server::Create(
    serve::MatchService* service, const ServerOptions& options,
    ShutdownFlag* shutdown) {
  if (service == nullptr) {
    return util::Status::InvalidArgument("net::Server needs a MatchService");
  }
  std::unique_ptr<Server> server(new Server(service, options, shutdown));
  if (server->shutdown_->wake_fd() < 0) {
    return util::Status::IoError("eventfd for the shutdown flag failed");
  }
  auto status = server->Listen();
  if (!status.ok()) return status;
  return server;
}

Server::Server(serve::MatchService* service, const ServerOptions& options,
               ShutdownFlag* shutdown)
    : service_(service), options_(options), shutdown_(shutdown) {
  if (shutdown_ == nullptr) {
    owned_shutdown_ = std::make_unique<ShutdownFlag>();
    shutdown_ = owned_shutdown_.get();
  }
  if (options_.num_threads == 0) {
    options_.num_threads = util::DefaultThreads();
  }
  if (options_.max_line_bytes == 0 ||
      options_.max_line_bytes > serve::kMaxRequestBytes) {
    options_.max_line_bytes = serve::kMaxRequestBytes;
  }
}

Server::~Server() {
  Shutdown();
  Wait();
}

util::Status Server::Listen() {
  listen_fd_ =
      ::socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return util::Status::IoError(Errno("socket"));
  int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return util::Status::InvalidArgument("bad bind address '" +
                                         options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return util::Status::IoError(
        Errno(("bind " + options_.bind_address + ":" +
               std::to_string(options_.port))
                  .c_str()));
  }
  if (::listen(listen_fd_, 4096) != 0) {
    return util::Status::IoError(Errno("listen"));
  }
  sockaddr_in bound;
  socklen_t len = sizeof(bound);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len) !=
      0) {
    return util::Status::IoError(Errno("getsockname"));
  }
  port_ = ntohs(bound.sin_port);
  return util::Status::OK();
}

util::Status Server::Start() {
  util::MutexLock lock(state_mu_);
  if (!threads_.empty()) {
    return util::Status::InvalidArgument("server already started");
  }
  threads_.reserve(options_.num_threads);
  for (size_t t = 0; t < options_.num_threads; ++t) {
    threads_.emplace_back([this]() { LoopMain(); });
  }
  return util::Status::OK();
}

void Server::Wait() {
  std::vector<std::thread> joined;
  {
    util::MutexLock lock(state_mu_);
    joined.swap(threads_);
  }
  for (auto& thread : joined) thread.join();
  // All loops have drained; closing the listener makes further connect
  // attempts fail fast instead of parking in the backlog.
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

util::Status Server::Run() {
  auto status = Start();
  if (!status.ok()) return status;
  Wait();
  return util::Status::OK();
}

ServerStats Server::Stats() const {
  ServerStats stats;
  stats.accepted = accepted_.load(std::memory_order_relaxed);
  stats.shed = shed_.load(std::memory_order_relaxed);
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  stats.idle_closed = idle_closed_.load(std::memory_order_relaxed);
  stats.backpressure_pauses =
      backpressure_pauses_.load(std::memory_order_relaxed);
  stats.bytes_read = bytes_read_.load(std::memory_order_relaxed);
  stats.bytes_written = bytes_written_.load(std::memory_order_relaxed);
  stats.active_connections =
      active_connections_.load(std::memory_order_relaxed);
  return stats;
}

void Server::LoopMain() {
  Loop loop;
  loop.epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
  if (loop.epoll_fd < 0) {
    WIKIMATCH_LOG(Warning) << "net: epoll_create1 failed: "
                           << std::strerror(errno);
    return;
  }
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLIN | EPOLLEXCLUSIVE;
  ev.data.u64 = kListenerTag;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) != 0) {
    // EPOLLEXCLUSIVE needs kernel >= 4.5; fall back to a shared wakeup.
    ev.events = EPOLLIN;
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev);
  }
  std::memset(&ev, 0, sizeof(ev));
  // Level-triggered and never drained, so one Request() wakes every loop.
  ev.events = EPOLLIN;
  ev.data.u64 = kWakeTag;
  ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, shutdown_->wake_fd(), &ev);

  loop.last_idle_sweep = Clock::now();
  std::array<epoll_event, 64> events;
  while (!shutdown_->requested()) {
    int timeout_ms = options_.idle_timeout_ms > 0
                         ? std::min(options_.idle_timeout_ms, 250)
                         : 1000;
    int n = ::epoll_wait(loop.epoll_fd, events.data(),
                         static_cast<int>(events.size()), timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      WIKIMATCH_LOG(Warning) << "net: epoll_wait failed: "
                             << std::strerror(errno);
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& event = events[i];
      if (event.data.u64 == kListenerTag) {
        HandleAccepts(&loop);
        continue;
      }
      if (event.data.u64 == kWakeTag) continue;
      auto* conn = static_cast<Connection*>(event.data.ptr);
      if (conn->closed) continue;
      if (event.events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(&loop, conn);
      } else {
        if (event.events & EPOLLOUT) OnWritable(&loop, conn);
        if (!conn->closed && (event.events & (EPOLLIN | EPOLLRDHUP))) {
          OnReadable(&loop, conn);
        }
      }
      loop.graveyard.clear();
    }
    SweepIdle(&loop);
  }
  Drain(&loop);
  ::close(loop.epoll_fd);
}

void Server::HandleAccepts(Loop* loop) {
  if (loop->draining) return;
  for (;;) {
    int fd = ::accept4(listen_fd_, nullptr, nullptr,
                       SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) {
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // EAGAIN (drained) or a transient error; epoll re-arms us
    }
    accepted_.fetch_add(1, std::memory_order_relaxed);
    // Load shedding: a one-line refusal is far cheaper for the client
    // than a silent close — the load balancer can back off immediately.
    if (active_connections_.load(std::memory_order_relaxed) >=
            options_.max_connections ||
        pending_requests_.load(std::memory_order_relaxed) >=
            options_.max_pending_requests) {
      // Count before the reply: a client that has read the busy line must
      // already see it in Stats().
      shed_.fetch_add(1, std::memory_order_relaxed);
      (void)::send(fd, kBusyReply, sizeof(kBusyReply) - 1, MSG_NOSIGNAL);
      ::close(fd);
      continue;
    }
    int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    if (options_.send_buffer_bytes > 0) {
      ::setsockopt(fd, SOL_SOCKET, SO_SNDBUF, &options_.send_buffer_bytes,
                   sizeof(options_.send_buffer_bytes));
    }
    auto conn = std::make_unique<Connection>(fd, options_.max_line_bytes);
    conn->last_active = Clock::now();
    epoll_event ev;
    std::memset(&ev, 0, sizeof(ev));
    ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
    ev.data.ptr = conn.get();
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
      ::close(fd);
      continue;
    }
    active_connections_.fetch_add(1, std::memory_order_relaxed);
    loop->conns.emplace(fd, std::move(conn));
  }
}

// Runs one complete line through the shared protocol semantics and queues
// the response. Returns true when the line asked to end the session.
bool Server::DispatchLine(Connection* conn, const std::string& line) {
  pending_requests_.fetch_add(1, std::memory_order_relaxed);
  serve::LineOutcome outcome = serve::HandleRequestLine(service_, line);
  pending_requests_.fetch_sub(1, std::memory_order_relaxed);
  if (outcome.quit) return true;
  if (outcome.response.empty()) return false;  // blank line
  requests_.fetch_add(1, std::memory_order_relaxed);
  if (outcome.response.compare(0, 12, "err protocol") == 0) {
    protocol_errors_.fetch_add(1, std::memory_order_relaxed);
  }
  conn->wbuf += outcome.response;
  return false;
}

void Server::ProcessLines(Loop* loop, Connection* conn) {
  while (!conn->closed && !conn->paused && !conn->want_close) {
    std::string line;
    serve::LineSplitter::Next next = conn->splitter.Pop(&line);
    if (next == serve::LineSplitter::Next::kNeedMore) break;
    if (next == serve::LineSplitter::Next::kOversized) {
      conn->wbuf += serve::OversizedLineResponse(options_.max_line_bytes);
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
    } else if (DispatchLine(conn, line)) {
      // "quit": flush what is owed, drop the rest of the pipeline.
      conn->want_close = true;
      break;
    }
    if (conn->wbuf.size() - conn->wpos > options_.write_buffer_limit) {
      FlushWrites(loop, conn);
      if (conn->closed) return;
      if (!loop->draining &&
          conn->wbuf.size() - conn->wpos > options_.write_buffer_limit) {
        PauseReading(loop, conn);
        break;
      }
    }
  }
  if (conn->closed) return;
  if (conn->peer_eof && !conn->paused && !conn->want_close) {
    // The client half-closed without terminating its last line; serve the
    // tail as a final request, then close after the flush.
    std::string tail;
    if (conn->splitter.Finish(&tail)) (void)DispatchLine(conn, tail);
    conn->want_close = true;
  }
  FlushWrites(loop, conn);
}

void Server::OnReadable(Loop* loop, Connection* conn) {
  conn->last_active = Clock::now();
  char buf[16 * 1024];
  // Edge-triggered: drain the socket until EAGAIN — but stop the moment
  // backpressure pauses the connection, leaving unread bytes in the
  // kernel buffer (which is the whole point: TCP flow control pushes the
  // pressure back to the client).
  while (!conn->closed && !conn->paused && !conn->want_close &&
         !conn->peer_eof) {
    ssize_t r = ::recv(conn->fd, buf, sizeof(buf), 0);
    if (r > 0) {
      bytes_read_.fetch_add(static_cast<uint64_t>(r),
                            std::memory_order_relaxed);
      conn->splitter.Append(buf, static_cast<size_t>(r));
      ProcessLines(loop, conn);
      continue;
    }
    if (r == 0) {
      conn->peer_eof = true;
      ProcessLines(loop, conn);
      break;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    CloseConnection(loop, conn);
    return;
  }
}

void Server::OnWritable(Loop* loop, Connection* conn) {
  FlushWrites(loop, conn);
  if (conn->closed) return;
  if (conn->paused &&
      conn->wbuf.size() - conn->wpos <= options_.write_buffer_limit) {
    ResumeReading(loop, conn);
    // Lines buffered while paused (and a pending peer EOF) are handled
    // now; fresh socket data arrives via the re-armed EPOLLIN.
    ProcessLines(loop, conn);
  }
}

void Server::FlushWrites(Loop* loop, Connection* conn) {
  if (conn->closed) return;
  while (conn->wpos < conn->wbuf.size()) {
    ssize_t w = ::send(conn->fd, conn->wbuf.data() + conn->wpos,
                       conn->wbuf.size() - conn->wpos, MSG_NOSIGNAL);
    if (w > 0) {
      conn->wpos += static_cast<size_t>(w);
      bytes_written_.fetch_add(static_cast<uint64_t>(w),
                               std::memory_order_relaxed);
      continue;
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return;  // EPOLLOUT re-arms
    CloseConnection(loop, conn);  // peer vanished; nothing left to flush to
    return;
  }
  conn->wbuf.clear();
  conn->wpos = 0;
  if (conn->want_close) CloseConnection(loop, conn);
}

void Server::PauseReading(Loop* loop, Connection* conn) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  ev.events = EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.ptr = conn;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->paused = true;
  backpressure_pauses_.fetch_add(1, std::memory_order_relaxed);
}

void Server::ResumeReading(Loop* loop, Connection* conn) {
  epoll_event ev;
  std::memset(&ev, 0, sizeof(ev));
  // EPOLL_CTL_MOD re-checks readiness, so bytes that arrived while paused
  // deliver a fresh edge immediately.
  ev.events = EPOLLIN | EPOLLOUT | EPOLLET | EPOLLRDHUP;
  ev.data.ptr = conn;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
  conn->paused = false;
}

void Server::CloseConnection(Loop* loop, Connection* conn) {
  if (conn->closed) return;
  conn->closed = true;
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, conn->fd, nullptr);
  // Drain unread input first (bounded): close(2) with bytes still queued
  // in the receive buffer makes TCP send RST instead of FIN, which would
  // destroy responses the peer has not read yet — e.g. the replies owed
  // before a `quit` that arrived in the same burst as later requests.
  char discard[4096];
  for (int i = 0; i < 16; ++i) {
    if (::recv(conn->fd, discard, sizeof(discard), 0) <= 0) break;
  }
  ::close(conn->fd);
  active_connections_.fetch_sub(1, std::memory_order_relaxed);
  auto it = loop->conns.find(conn->fd);
  if (it != loop->conns.end() && it->second.get() == conn) {
    loop->graveyard.push_back(std::move(it->second));
    loop->conns.erase(it);
  }
}

void Server::SweepIdle(Loop* loop) {
  if (options_.idle_timeout_ms <= 0) return;
  auto now = Clock::now();
  auto interval =
      std::chrono::milliseconds(std::max(1, options_.idle_timeout_ms / 4));
  if (now - loop->last_idle_sweep < interval) return;
  loop->last_idle_sweep = now;
  auto limit = std::chrono::milliseconds(options_.idle_timeout_ms);
  std::vector<Connection*> stale;
  // Sweep order is per-connection bookkeeping; no response bytes depend
  // on which stale peer closes first.
  for (auto& [fd, conn] : loop->conns) {  // NOLINT(unordered-iter)
    if (now - conn->last_active > limit) stale.push_back(conn.get());
  }
  for (auto* conn : stale) {
    idle_closed_.fetch_add(1, std::memory_order_relaxed);
    CloseConnection(loop, conn);
  }
  loop->graveyard.clear();
}

void Server::Drain(Loop* loop) {
  loop->draining = true;
  // Stop accepting (this loop's share of the shared listener) and stop
  // spinning on the never-drained wake eventfd.
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, listen_fd_, nullptr);
  ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_DEL, shutdown_->wake_fd(), nullptr);

  // Answer everything already received in full; read nothing new.
  std::vector<Connection*> open;
  open.reserve(loop->conns.size());
  // Each connection's replies stay ordered within that connection; the
  // drain visit order across peers cannot reorder any byte stream.
  for (auto& [fd, conn] : loop->conns) {  // NOLINT(unordered-iter)
    open.push_back(conn.get());
  }
  for (auto* conn : open) {
    if (conn->closed) continue;
    conn->paused = false;  // drain ignores backpressure: flush everything
    ProcessLines(loop, conn);
    if (conn->closed) continue;
    conn->want_close = true;
    FlushWrites(loop, conn);
  }
  loop->graveyard.clear();

  // Flush stragglers (peers slow to read) until done or out of budget.
  auto deadline = Clock::now() + std::chrono::milliseconds(
                                     std::max(0, options_.drain_timeout_ms));
  std::array<epoll_event, 64> events;
  while (!loop->conns.empty() && Clock::now() < deadline) {
    int n = ::epoll_wait(loop->epoll_fd, events.data(),
                         static_cast<int>(events.size()), 50);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      if (events[i].data.u64 == kListenerTag ||
          events[i].data.u64 == kWakeTag) {
        continue;
      }
      auto* conn = static_cast<Connection*>(events[i].data.ptr);
      if (conn->closed) continue;
      if (events[i].events & (EPOLLERR | EPOLLHUP)) {
        CloseConnection(loop, conn);
      } else if (events[i].events & EPOLLOUT) {
        FlushWrites(loop, conn);
      }
      loop->graveyard.clear();
    }
  }
  // Past the budget: cut the remaining connections loose.
  std::vector<Connection*> rest;
  rest.reserve(loop->conns.size());
  // Tear-down order of abandoned peers is unobservable in any output.
  for (auto& [fd, conn] : loop->conns) {  // NOLINT(unordered-iter)
    rest.push_back(conn.get());
  }
  for (auto* conn : rest) CloseConnection(loop, conn);
  loop->graveyard.clear();
}

}  // namespace net
}  // namespace wikimatch
