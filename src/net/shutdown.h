// Process-wide graceful-shutdown plumbing shared by every serving
// transport. A ShutdownFlag is an atomic bool plus an eventfd: the bool is
// what loops poll, the eventfd is what wakes an epoll_wait that would
// otherwise sleep through the request. InstallShutdownHandlers() points
// SIGINT/SIGTERM at one flag *without* SA_RESTART, so the stdin serve
// loop's blocking read returns early and exits through the same flag the
// TCP server drains on — one shutdown path for both transports.

#ifndef WIKIMATCH_NET_SHUTDOWN_H_
#define WIKIMATCH_NET_SHUTDOWN_H_

#include <atomic>

#include "util/status.h"

namespace wikimatch {
namespace net {

/// \brief One shutdown request: an atomic flag plus an eventfd to wake
/// sleeping epoll loops. Request() is async-signal-safe.
class ShutdownFlag {
 public:
  ShutdownFlag();
  ~ShutdownFlag();
  ShutdownFlag(const ShutdownFlag&) = delete;
  ShutdownFlag& operator=(const ShutdownFlag&) = delete;

  /// \brief Requests shutdown: sets the flag and wakes every epoll loop
  /// watching wake_fd(). Safe to call from a signal handler (an atomic
  /// store and a write(2)) and idempotent.
  void Request();

  bool requested() const {
    return requested_.load(std::memory_order_acquire);
  }

  /// \brief The flag itself, for code that only needs to poll it (the
  /// stdin ServeLoop's `stop` parameter).
  const std::atomic<bool>* flag() const { return &requested_; }

  /// \brief Becomes readable once Request() has run; register it in an
  /// epoll set (level-triggered, never drained) so every loop wakes.
  int wake_fd() const { return wake_fd_; }

 private:
  std::atomic<bool> requested_{false};
  int wake_fd_ = -1;
};

/// \brief Routes SIGINT and SIGTERM to `flag->Request()`. Handlers are
/// installed without SA_RESTART so blocking reads (the stdin protocol
/// loop) return with EINTR instead of resuming, letting the caller notice
/// the flag. `flag` must outlive the handlers; installing again replaces
/// the previous target.
util::Status InstallShutdownHandlers(ShutdownFlag* flag);

}  // namespace net
}  // namespace wikimatch

#endif  // WIKIMATCH_NET_SHUTDOWN_H_
