// wikimatch — command-line front end.
//
//   wikimatch match --dump en=enwiki.xml --dump pt=ptwiki.xml --pair pt:en
//       [--tsim 0.6] [--tlsi 0.1] [--tsv matches.tsv]
//     Ingests MediaWiki XML dumps, aligns infobox schemas for the language
//     pair, prints match clusters per entity type (optionally as TSV).
//
//   wikimatch types --dump ... --pair pt:en
//     Prints the cross-language entity-type mapping only.
//
//   wikimatch query --dump ... --lang pt [--translate pt:en] "<c-query>"
//     Evaluates a c-query; with --translate, first derives attribute
//     correspondences and rewrites the query into the target language.
//
//   wikimatch demo [scale]
//     Self-contained demonstration on a generated corpus.
//
//   wikimatch build-snapshot --dump ... --pair pt:en [--pair vi:en]
//       --out matches.snap [--threads n]
//     Runs the full pipeline for every --pair and persists corpus,
//     dictionary, and alignments as a binary snapshot (--synth <scale>
//     substitutes a generated corpus for the dumps).
//
//   wikimatch apply-delta --snapshot matches.snap --out matches2.snap
//       [--dump <lang>=<delta.xml>]... [--remove <lang>:<title>]...
//     Applies an edit batch to a matched snapshot incrementally: dump pages
//     upsert articles (existing titles update, new titles add), --remove
//     deletes, and only the type pairs the delta can influence are
//     re-aligned (docs/INGEST.md). The output snapshot carries a bumped
//     generation number; a running `serve` picks it up via `reload`.
//
//   wikimatch sync --snapshot matches.snap [--out matches2.snap]
//       [--threads n]
//     Runs the cross-language value synchronization engine (docs/SYNC.md)
//     over every aligned type in the snapshot and persists the resulting
//     SyncReport into the snapshot (section kind 5), so `serve` answers
//     `sync`/`sync-status` without recomputation. Without --out the
//     snapshot is rewritten in place. apply-delta keeps an existing report
//     current incrementally (SyncEngine::Resync over the dirty articles).
//
//   wikimatch serve --snapshot matches.snap [--cache-capacity n]
//     Answers lookup/query requests over stdin/stdout from a snapshot,
//     without re-running the matcher (protocol: docs/SERVING.md). The
//     `reload` verb hot-swaps to a rebuilt snapshot without a restart.

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "ingest/delta.h"
#include "ingest/incremental_matcher.h"
#include "match/match_io.h"
#include "match/pipeline.h"
#include "match/type_matcher.h"
#include "query/c_query.h"
#include "query/evaluator.h"
#include "query/translator.h"
#include "net/server.h"
#include "net/shutdown.h"
#include "serve/match_service.h"
#include "serve/protocol.h"
#include "store/snapshot.h"
#include "sync/sync_engine.h"
#include "synth/generator.h"
#include "text/normalize.h"
#include "util/logging.h"
#include "util/thread_pool.h"
#include "wiki/corpus.h"
#include "wiki/dump_reader.h"
#include "wiki/wikitext_parser.h"

using namespace wikimatch;

namespace {

struct Args {
  std::string command;
  std::vector<std::pair<std::string, std::string>> dumps;  // lang, path
  std::vector<std::pair<std::string, std::string>> removes;  // lang, title
  std::string pair_a;
  std::string pair_b;
  std::vector<std::pair<std::string, std::string>> pairs;  // every --pair
  std::string lang;
  std::string query_text;
  std::string tsv_path;
  std::string save_path;
  std::string matches_path;
  std::string out_path;
  std::string snapshot_path;
  double t_sim = 0.6;
  double t_lsi = 0.1;
  double scale = 0.1;
  double synth_scale = 0.0;  // build-snapshot: > 0 uses a generated corpus
  size_t num_threads = 0;    // 0 = command-specific default
  size_t align_threads = 0;  // 0 = sequential intra-pair alignment
  size_t cache_capacity = 4096;
  int listen_port = -1;       // serve: < 0 = stdin mode, else TCP port
  size_t net_threads = 0;     // serve --listen: 0 = one per core
  size_t max_conns = 1024;    // serve --listen: shed accepts past this
  bool translate = false;
  bool print_stats = false;
};

void Usage() {
  std::fprintf(stderr,
               "usage: wikimatch <match|types|query|demo|build-snapshot|"
               "apply-delta|sync|serve> [options]\n"
               "  --dump <lang>=<path>   add a MediaWiki XML dump (repeat; "
               "for apply-delta, an edit batch to upsert)\n"
               "  --remove <lang>:<title> delete an article "
               "(apply-delta, repeat)\n"
               "  --pair <a>:<b>         language pair, e.g. pt:en "
               "(repeatable for build-snapshot)\n"
               "  --lang <code>          query language\n"
               "  --translate            translate the query across --pair\n"
               "  --tsim / --tlsi <v>    WikiMatch thresholds\n"
               "  --threads <n>          pool workers cooperating on "
               "per-type alignment\n"
               "  --align-threads <n>    pool workers cooperating inside "
               "one type pair's similarity join (both knobs share one "
               "pool sized to the larger of the two — nested loops "
               "borrow workers, never spawn)\n"
               "  --stats                print pipeline phase timings and "
               "join counters to stderr\n"
               "  --tsv <path>           write matches as TSV\n"
               "  --save-matches <path>  persist match clusters (match)\n"
               "  --matches <path>       reuse persisted clusters (query)\n"
               "  --out <path>           snapshot output (build-snapshot)\n"
               "  --synth <scale>        build-snapshot from a generated "
               "corpus instead of dumps\n"
               "  --snapshot <path>      snapshot to serve / apply a delta "
               "to\n"
               "  --cache-capacity <n>   LRU result-cache entries (serve)\n"
               "  --listen <port>        serve over TCP instead of stdin "
               "(0 picks an ephemeral port)\n"
               "  --net-threads <n>      event-loop threads for --listen "
               "(default: one per core)\n"
               "  --max-conns <n>        shed connections past this cap "
               "(--listen, default 1024)\n");
}

bool ParseArgs(int argc, char** argv, Args* args) {
  if (argc < 2) return false;
  args->command = argv[1];
  for (int i = 2; i < argc; ++i) {
    std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--dump") {
      const char* v = next();
      if (v == nullptr) return false;
      const char* eq = std::strchr(v, '=');
      if (eq == nullptr) return false;
      args->dumps.emplace_back(std::string(v, eq), std::string(eq + 1));
    } else if (arg == "--pair") {
      const char* v = next();
      if (v == nullptr) return false;
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr) return false;
      args->pairs.emplace_back(std::string(v, colon), colon + 1);
      if (args->pair_a.empty()) {
        args->pair_a = args->pairs.back().first;
        args->pair_b = args->pairs.back().second;
      }
    } else if (arg == "--remove") {
      const char* v = next();
      if (v == nullptr) return false;
      const char* colon = std::strchr(v, ':');
      if (colon == nullptr) return false;
      args->removes.emplace_back(std::string(v, colon), colon + 1);
    } else if (arg == "--lang") {
      const char* v = next();
      if (v == nullptr) return false;
      args->lang = v;
    } else if (arg == "--tsv") {
      const char* v = next();
      if (v == nullptr) return false;
      args->tsv_path = v;
    } else if (arg == "--save-matches") {
      const char* v = next();
      if (v == nullptr) return false;
      args->save_path = v;
    } else if (arg == "--matches") {
      const char* v = next();
      if (v == nullptr) return false;
      args->matches_path = v;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return false;
      args->out_path = v;
    } else if (arg == "--snapshot") {
      const char* v = next();
      if (v == nullptr) return false;
      args->snapshot_path = v;
    } else if (arg == "--synth") {
      const char* v = next();
      if (v == nullptr) return false;
      args->synth_scale = std::atof(v);
    } else if (arg == "--threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args->num_threads = static_cast<size_t>(std::atol(v));
    } else if (arg == "--align-threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args->align_threads = static_cast<size_t>(std::atol(v));
    } else if (arg == "--stats") {
      args->print_stats = true;
    } else if (arg == "--cache-capacity") {
      const char* v = next();
      if (v == nullptr) return false;
      args->cache_capacity = static_cast<size_t>(std::atol(v));
    } else if (arg == "--listen") {
      const char* v = next();
      if (v == nullptr) return false;
      long port = std::atol(v);
      if (port < 0 || port > 65535) return false;
      args->listen_port = static_cast<int>(port);
    } else if (arg == "--net-threads") {
      const char* v = next();
      if (v == nullptr) return false;
      args->net_threads = static_cast<size_t>(std::atol(v));
    } else if (arg == "--max-conns") {
      const char* v = next();
      if (v == nullptr) return false;
      args->max_conns = static_cast<size_t>(std::atol(v));
    } else if (arg == "--tsim") {
      const char* v = next();
      if (v == nullptr) return false;
      args->t_sim = std::atof(v);
    } else if (arg == "--tlsi") {
      const char* v = next();
      if (v == nullptr) return false;
      args->t_lsi = std::atof(v);
    } else if (arg == "--translate") {
      args->translate = true;
    } else if (arg[0] != '-') {
      if (args->command == "demo") {
        args->scale = std::atof(arg.c_str());
      } else {
        args->query_text = arg;
      }
    } else {
      std::fprintf(stderr, "unknown option %s\n", arg.c_str());
      return false;
    }
  }
  return true;
}

// Loads all --dump files into a finalized corpus.
util::Result<wiki::Corpus> LoadCorpus(const Args& args) {
  wiki::Corpus corpus;
  wiki::WikitextParser parser;
  for (const auto& [lang, path] : args.dumps) {
    auto pages = wiki::ReadDumpFile(path);
    if (!pages.ok()) return pages.status().WithContext(path);
    auto added = corpus.IngestDump(*pages, lang, parser);
    if (!added.ok()) return added.status().WithContext(path);
    std::fprintf(stderr, "loaded %zu %s articles from %s\n", *added,
                 lang.c_str(), path.c_str());
  }
  corpus.Finalize();
  return corpus;
}

int RunMatch(const Args& args, bool types_only) {
  if (args.dumps.empty() || args.pair_a.empty()) {
    Usage();
    return 2;
  }
  auto corpus = LoadCorpus(args);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  match::MatchPipeline pipeline(&*corpus);
  match::PipelineOptions options;
  options.matcher.t_sim = args.t_sim;
  options.matcher.t_lsi = args.t_lsi;
  if (args.num_threads > 0) options.num_threads = args.num_threads;
  if (args.align_threads > 0) {
    options.matcher.num_threads = args.align_threads;
  }
  auto result = pipeline.Run(args.pair_a, args.pair_b, options);
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  if (args.print_stats) {
    std::fprintf(stderr, "pipeline %s:%s %s\n", args.pair_a.c_str(),
                 args.pair_b.c_str(), result->stats.ToString().c_str());
  }

  std::printf("# entity-type mapping (%s -> %s)\n", args.pair_a.c_str(),
              args.pair_b.c_str());
  for (const auto& tm : result->type_matches) {
    std::printf("%s\t%s\t%zu votes\t%.2f\n", tm.type_a.c_str(),
                tm.type_b.c_str(), tm.votes, tm.confidence);
  }
  if (types_only) return 0;

  std::FILE* tsv = nullptr;
  if (!args.tsv_path.empty()) {
    tsv = std::fopen(args.tsv_path.c_str(), "w");
    if (tsv == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", args.tsv_path.c_str());
      return 1;
    }
    std::fprintf(tsv, "type_a\ttype_b\tlang_a\tattr_a\tlang_b\tattr_b\n");
  }
  for (const auto& tr : result->per_type) {
    std::printf("\n# %s / %s (%zu dual infoboxes)\n", tr.type_a.c_str(),
                tr.type_b.c_str(), tr.num_duals);
    for (const auto& cluster : tr.alignment.matches.Clusters()) {
      std::string line;
      for (const auto& attr : cluster) {
        if (!line.empty()) line += " ~ ";
        line += attr.language + ":" + attr.name;
      }
      std::printf("%s\n", line.c_str());
    }
    if (tsv != nullptr) {
      for (const auto& [a, b] : tr.alignment.matches.CrossLanguagePairs(
               args.pair_a, args.pair_b)) {
        std::fprintf(tsv, "%s\t%s\t%s\t%s\t%s\t%s\n", tr.type_a.c_str(),
                     tr.type_b.c_str(), a.language.c_str(), a.name.c_str(),
                     b.language.c_str(), b.name.c_str());
      }
    }
  }
  if (tsv != nullptr) std::fclose(tsv);
  if (!args.save_path.empty()) {
    match::TypeMatchSets sets;
    for (const auto& tr : result->per_type) {
      sets.emplace(tr.type_b, tr.alignment.matches);
    }
    auto saved = match::SaveMatchSets(sets, args.save_path);
    if (!saved.ok()) {
      std::fprintf(stderr, "%s\n", saved.ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "saved matches to %s\n", args.save_path.c_str());
  }
  return 0;
}

int RunQuery(const Args& args) {
  if (args.dumps.empty() || args.lang.empty() || args.query_text.empty()) {
    Usage();
    return 2;
  }
  auto corpus = LoadCorpus(args);
  if (!corpus.ok()) {
    std::fprintf(stderr, "%s\n", corpus.status().ToString().c_str());
    return 1;
  }
  auto parsed = query::ParseCQuery(args.query_text);
  if (!parsed.ok()) {
    std::fprintf(stderr, "query: %s\n", parsed.status().ToString().c_str());
    return 1;
  }
  query::CQuery q = std::move(parsed).ValueOrDie();
  std::string eval_lang = args.lang;

  std::map<std::string, eval::MatchSet> per_type_storage;
  if (args.translate) {
    if (args.pair_a.empty()) {
      Usage();
      return 2;
    }
    match::MatchPipeline pipeline(&*corpus);
    std::vector<match::TypeMatch> type_matches;
    if (!args.matches_path.empty()) {
      auto loaded = match::LoadMatchSets(args.matches_path);
      if (!loaded.ok()) {
        std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
        return 1;
      }
      per_type_storage = std::move(loaded).ValueOrDie();
      match::TypeMatcher type_matcher;
      type_matches = type_matcher.Match(*corpus, args.pair_a, args.pair_b);
    } else {
      match::PipelineOptions options;
      if (args.num_threads > 0) options.num_threads = args.num_threads;
      auto result = pipeline.Run(args.pair_a, args.pair_b, options);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      type_matches = result->type_matches;
      for (const auto& tr : result->per_type) {
        per_type_storage.emplace(tr.type_b, tr.alignment.matches);
      }
    }
    std::map<std::string, const eval::MatchSet*> per_type;
    for (const auto& [type_b, matches] : per_type_storage) {
      per_type.emplace(type_b, &matches);
    }
    query::QueryTranslator translator(args.pair_a, args.pair_b,
                                      type_matches, per_type,
                                      &pipeline.dictionary());
    query::TranslationReport report;
    auto translated = translator.Translate(q, &report);
    if (!translated.ok()) {
      std::fprintf(stderr, "translation: %s\n",
                   translated.status().ToString().c_str());
      return 1;
    }
    q = std::move(translated).ValueOrDie();
    eval_lang = args.pair_b;
    std::printf("# translated query: %s (%zu translated, %zu relaxed)\n",
                q.ToString().c_str(), report.constraints_translated,
                report.constraints_relaxed);
  }

  query::QueryEvaluator evaluator(&*corpus, eval_lang);
  auto answers = evaluator.Run(q);
  if (!answers.ok()) {
    std::fprintf(stderr, "%s\n", answers.status().ToString().c_str());
    return 1;
  }
  for (size_t i = 0; i < answers->size(); ++i) {
    const auto& answer = (*answers)[i];
    std::printf("%2zu. %s", i + 1,
                corpus->Get(answer.article).title.c_str());
    for (const auto& projection : answer.projections) {
      std::printf("\t%s", projection.c_str());
    }
    std::printf("\n");
  }
  return 0;
}

int RunBuildSnapshot(const Args& args) {
  if (args.out_path.empty() || args.pairs.empty() ||
      (args.dumps.empty() && args.synth_scale <= 0.0)) {
    Usage();
    return 2;
  }
  wiki::Corpus corpus;
  if (args.synth_scale > 0.0) {
    std::fprintf(stderr, "generating synthetic corpus (scale %.2f)...\n",
                 args.synth_scale);
    synth::CorpusGenerator generator(
        synth::GeneratorOptions::Paper(args.synth_scale));
    auto gc = generator.Generate();
    if (!gc.ok()) {
      std::fprintf(stderr, "%s\n", gc.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(gc->corpus);
  } else {
    auto loaded = LoadCorpus(args);
    if (!loaded.ok()) {
      std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
      return 1;
    }
    corpus = std::move(loaded).ValueOrDie();
  }

  match::MatchPipeline pipeline(&corpus);
  match::PipelineOptions options;
  options.matcher.t_sim = args.t_sim;
  options.matcher.t_lsi = args.t_lsi;
  // Offline builds default to every core; alignment output order stays
  // deterministic regardless (see PipelineOptions::num_threads).
  options.num_threads =
      args.num_threads > 0 ? args.num_threads : util::DefaultThreads();
  if (args.align_threads > 0) {
    options.matcher.num_threads = args.align_threads;
  }

  auto writer = store::SnapshotWriter::Open(args.out_path);
  if (!writer.ok()) {
    std::fprintf(stderr, "%s\n", writer.status().ToString().c_str());
    return 1;
  }
  auto status = writer->WriteCorpus(corpus);
  if (status.ok()) status = writer->WriteDictionary(pipeline.dictionary());
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  for (const auto& [lang_a, lang_b] : args.pairs) {
    auto result = pipeline.Run(lang_a, lang_b, options);
    if (!result.ok()) {
      std::fprintf(stderr, "pair %s:%s: %s\n", lang_a.c_str(),
                   lang_b.c_str(), result.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "pair %s:%s: %zu type matches, %zu aligned types\n",
                 lang_a.c_str(), lang_b.c_str(),
                 result->type_matches.size(), result->per_type.size());
    if (args.print_stats) {
      std::fprintf(stderr, "pipeline %s:%s %s\n", lang_a.c_str(),
                   lang_b.c_str(), result->stats.ToString().c_str());
    }
    status = writer->WritePipeline(lang_a, lang_b, *result);
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  // Stamp the options fingerprint so a later apply-delta can refuse to
  // reuse unit results computed under different thresholds.
  store::SnapshotMeta meta;
  meta.options = store::OptionsFingerprint::From(options);
  status = writer->WriteMeta(meta);
  if (status.ok()) status = writer->Finish();
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote snapshot %s (%zu articles, %zu dictionary "
               "entries, %zu pairs)\n",
               args.out_path.c_str(), static_cast<size_t>(corpus.size()),
               pipeline.dictionary().size(), args.pairs.size());
  return 0;
}

// Parses every --dump file and classifies its articles against the
// snapshot corpus: pages whose (language, title) already exist become
// updates, the rest become additions. --remove entries become deletions.
util::Result<ingest::DeltaBatch> BuildDeltaBatch(const Args& args,
                                                 const wiki::Corpus& corpus) {
  ingest::DeltaBatch batch;
  wiki::WikitextParser parser;
  for (const auto& [lang, path] : args.dumps) {
    auto pages = wiki::ReadDumpFile(path);
    if (!pages.ok()) return pages.status().WithContext(path);
    size_t updated = 0, added = 0;
    for (const auto& page : *pages) {
      if (page.ns != 0) continue;
      auto parsed = parser.ParseArticle(page.title, lang, page.text);
      if (!parsed.ok()) {
        WIKIMATCH_LOG(Warning) << "skipping page '" << page.title
                               << "': " << parsed.status().ToString();
        continue;
      }
      wiki::Article article = std::move(parsed).ValueOrDie();
      if (corpus.FindExactTitle(lang, article.title) !=
          wiki::kInvalidArticle) {
        batch.updated.push_back(std::move(article));
        ++updated;
      } else {
        batch.added.push_back(std::move(article));
        ++added;
      }
    }
    std::fprintf(stderr, "delta %s: %zu updated, %zu added from %s\n",
                 lang.c_str(), updated, added, path.c_str());
  }
  for (const auto& [lang, title] : args.removes) {
    // Corpus titles are stored in NormalizeTitle form; accept raw input.
    batch.removed.emplace_back(lang, text::NormalizeTitle(title));
  }
  return batch;
}

// The hub language shared by every pipeline pair (the <tgt> of --pair);
// empty when the snapshot's pairs disagree, which sync cannot serve.
std::string HubLanguage(
    const std::map<store::LanguagePair, match::PipelineResult>& pipelines) {
  std::string hub;
  for (const auto& [pair, result] : pipelines) {
    if (hub.empty()) {
      hub = pair.second;
    } else if (hub != pair.second) {
      return "";
    }
  }
  return hub;
}

int RunSync(const Args& args) {
  if (args.snapshot_path.empty()) {
    Usage();
    return 2;
  }
  auto snapshot = store::ReadSnapshotFile(args.snapshot_path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  std::string hub = HubLanguage(snapshot->pipelines);
  if (hub.empty()) {
    std::fprintf(stderr, "sync needs at least one pipeline pair and a "
                 "single shared hub language\n");
    return 1;
  }
  sync::SyncEngine engine(&snapshot->corpus, &snapshot->dictionary, hub);
  auto scopes = sync::SyncEngine::ScopesFromPipelines(snapshot->pipelines);
  size_t threads =
      args.num_threads > 0 ? args.num_threads : util::DefaultThreads();
  sync::SyncReport report = engine.Run(scopes, threads);
  report.generation = snapshot->meta.generation;
  snapshot->sync_report = std::move(report);
  const std::string& out =
      args.out_path.empty() ? args.snapshot_path : args.out_path;
  auto status = store::WriteSnapshotFile(*snapshot, out);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  const sync::SyncReport& written = snapshot->sync_report;
  std::fprintf(stderr, "wrote snapshot %s (generation %llu, %zu cells, "
               "%zu updates)\n",
               out.c_str(),
               static_cast<unsigned long long>(written.generation),
               written.cells.size(), written.updates.size());
  for (const auto& [key, counts] : written.Summaries()) {
    std::fprintf(stderr,
                 "  %s %s: in_sync=%llu stale=%llu missing=%llu "
                 "conflict=%llu unverifiable=%llu\n",
                 key.first.c_str(), key.second.c_str(),
                 static_cast<unsigned long long>(counts.in_sync),
                 static_cast<unsigned long long>(counts.stale),
                 static_cast<unsigned long long>(counts.missing),
                 static_cast<unsigned long long>(counts.conflict),
                 static_cast<unsigned long long>(counts.unverifiable));
  }
  return 0;
}

int RunApplyDelta(const Args& args) {
  if (args.snapshot_path.empty() || args.out_path.empty() ||
      (args.dumps.empty() && args.removes.empty())) {
    Usage();
    return 2;
  }
  auto snapshot = store::ReadSnapshotFile(args.snapshot_path);
  if (!snapshot.ok()) {
    std::fprintf(stderr, "%s\n", snapshot.status().ToString().c_str());
    return 1;
  }
  // The matcher options must reproduce the run that built the snapshot for
  // clean units to be reusable; pass the same flags as build-snapshot.
  match::PipelineOptions options;
  options.matcher.t_sim = args.t_sim;
  options.matcher.t_lsi = args.t_lsi;
  options.num_threads =
      args.num_threads > 0 ? args.num_threads : util::DefaultThreads();
  if (args.align_threads > 0) {
    options.matcher.num_threads = args.align_threads;
  }
  // The matcher does not carry the sync report through ToSnapshot(); keep
  // the previous report so it can be refreshed incrementally below.
  sync::SyncReport previous_sync = std::move(snapshot->sync_report);
  auto matcher_or = ingest::IncrementalMatcher::FromSnapshot(
      std::move(snapshot).ValueOrDie(), options);
  if (!matcher_or.ok()) {
    std::fprintf(stderr, "%s\n", matcher_or.status().ToString().c_str());
    return 1;
  }
  ingest::IncrementalMatcher matcher = std::move(matcher_or).ValueOrDie();
  auto batch = BuildDeltaBatch(args, matcher.corpus());
  if (!batch.ok()) {
    std::fprintf(stderr, "%s\n", batch.status().ToString().c_str());
    return 1;
  }
  auto stats = matcher.Apply(*batch);
  if (!stats.ok()) {
    std::fprintf(stderr, "%s\n", stats.status().ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "%s\n", stats->ToString().c_str());
  store::Snapshot out = matcher.ToSnapshot();
  if (!previous_sync.empty()) {
    // Refresh the persisted sync report over just the touched articles, so
    // a snapshot that ran `wikimatch sync` stays current through deltas.
    std::set<std::pair<std::string, std::string>> dirty;
    for (const auto& article : batch->added) {
      dirty.emplace(article.language, article.title);
    }
    for (const auto& article : batch->updated) {
      dirty.emplace(article.language, article.title);
    }
    for (const auto& key : batch->removed) dirty.insert(key);
    std::string hub = HubLanguage(out.pipelines);
    if (hub.empty()) {
      std::fprintf(stderr, "cannot refresh sync report: no shared hub "
                   "language\n");
      return 1;
    }
    sync::SyncEngine engine(&out.corpus, &out.dictionary, hub);
    auto scopes = sync::SyncEngine::ScopesFromPipelines(out.pipelines);
    sync::SyncReport report = engine.Resync(scopes, previous_sync, dirty,
                                            options.num_threads);
    report.generation = out.meta.generation;
    out.sync_report = std::move(report);
    std::fprintf(stderr, "refreshed sync report: %zu cells, %zu updates, "
                 "%zu dirty articles\n",
                 out.sync_report.cells.size(), out.sync_report.updates.size(),
                 dirty.size());
  }
  auto status = store::WriteSnapshotFile(out, args.out_path);
  if (!status.ok()) {
    std::fprintf(stderr, "%s\n", status.ToString().c_str());
    return 1;
  }
  std::fprintf(stderr, "wrote snapshot %s (generation %llu)\n",
               args.out_path.c_str(),
               static_cast<unsigned long long>(matcher.generation()));
  return 0;
}

int RunServe(const Args& args) {
  if (args.snapshot_path.empty()) {
    Usage();
    return 2;
  }
  serve::ServiceOptions options;
  options.cache_capacity = args.cache_capacity;
  auto service = serve::MatchService::Load(args.snapshot_path, options);
  if (!service.ok()) {
    std::fprintf(stderr, "%s\n", service.status().ToString().c_str());
    return 1;
  }
  // CorpusSize() would force the deferred decode and defeat the O(1)
  // mmap startup, so the banner only reports it when the core is already
  // in memory (legacy snapshots parsed eagerly).
  if ((*service)->CoreLoaded()) {
    std::fprintf(stderr, "serving %s (%zu articles, generation %llu); one "
                 "request per line, 'help' for the protocol, 'reload' to "
                 "hot-swap the snapshot, 'quit' or EOF to stop\n",
                 args.snapshot_path.c_str(), (*service)->CorpusSize(),
                 static_cast<unsigned long long>((*service)->Generation()));
  } else {
    std::fprintf(stderr, "serving %s (mmapped, decode deferred to first "
                 "request, generation %llu); one request per line, 'help' "
                 "for the protocol, 'reload' to hot-swap the snapshot, "
                 "'quit' or EOF to stop\n",
                 args.snapshot_path.c_str(),
                 static_cast<unsigned long long>((*service)->Generation()));
  }
  // SIGINT/SIGTERM route through one flag for both transports: the TCP
  // server drains on it, the stdin loop polls it (and, with SA_RESTART
  // off, its blocking read returns early instead of eating the signal).
  net::ShutdownFlag shutdown;
  auto installed = net::InstallShutdownHandlers(&shutdown);
  if (!installed.ok()) {
    std::fprintf(stderr, "%s\n", installed.ToString().c_str());
    return 1;
  }
  if (args.listen_port >= 0) {
    net::ServerOptions options;
    options.bind_address = "0.0.0.0";
    options.port = static_cast<uint16_t>(args.listen_port);
    options.num_threads = args.net_threads;
    options.max_connections = args.max_conns;
    auto server = net::Server::Create(service->get(), options, &shutdown);
    if (!server.ok()) {
      std::fprintf(stderr, "%s\n", server.status().ToString().c_str());
      return 1;
    }
    std::fprintf(stderr, "listening on %s:%u (%zu event-loop threads, "
                 "max %zu connections)\n", options.bind_address.c_str(),
                 static_cast<unsigned>((*server)->port()),
                 options.num_threads == 0 ? util::DefaultThreads()
                                          : options.num_threads,
                 options.max_connections);
    auto run = (*server)->Run();
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.ToString().c_str());
      return 1;
    }
    net::ServerStats stats = (*server)->Stats();
    std::fprintf(stderr, "drained: served %llu requests over %llu "
                 "connections (%llu shed)\n",
                 static_cast<unsigned long long>(stats.requests),
                 static_cast<unsigned long long>(stats.accepted - stats.shed),
                 static_cast<unsigned long long>(stats.shed));
    return 0;
  }
  size_t served =
      serve::ServeLoop(std::cin, std::cout, service->get(), shutdown.flag());
  std::fprintf(stderr, "served %zu requests\n", served);
  return 0;
}

int RunDemo(const Args& args) {
  std::printf("Generating demo corpus (scale %.2f)...\n", args.scale);
  synth::CorpusGenerator generator(
      synth::GeneratorOptions::Paper(args.scale));
  auto gc = generator.Generate();
  if (!gc.ok()) {
    std::fprintf(stderr, "%s\n", gc.status().ToString().c_str());
    return 1;
  }
  match::MatchPipeline pipeline(&gc->corpus);
  auto result = pipeline.Run("pt", "en");
  if (!result.ok()) {
    std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
    return 1;
  }
  for (const auto& tr : result->per_type) {
    std::printf("\n# %s / %s\n", tr.type_a.c_str(), tr.type_b.c_str());
    size_t shown = 0;
    for (const auto& cluster : tr.alignment.matches.Clusters()) {
      if (shown++ >= 6) break;
      std::string line;
      for (const auto& attr : cluster) {
        if (!line.empty()) line += " ~ ";
        line += attr.language + ":" + attr.name;
      }
      std::printf("%s\n", line.c_str());
    }
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  Args args;
  if (!ParseArgs(argc, argv, &args)) {
    Usage();
    return 2;
  }
  util::SetLogLevel(util::LogLevel::kWarning);
  // The thread knobs name shares of ONE pool, not independent budgets:
  // size the shared pool to the larger knob before any parallel work
  // touches it. A run with --align-threads N therefore never has more
  // than max(N, --threads) pool workers alive, no matter how many type
  // pairs align concurrently. Unspecified knobs leave the lazy default
  // (DefaultThreads(): WIKIMATCH_THREADS env, cgroup quota, core count).
  if (size_t hint = std::max(args.num_threads, args.align_threads);
      hint > 0) {
    util::ThreadPool::SetDefaultPoolSize(hint);
  }
  if (args.command == "match") return RunMatch(args, false);
  if (args.command == "types") return RunMatch(args, true);
  if (args.command == "query") return RunQuery(args);
  if (args.command == "demo") return RunDemo(args);
  if (args.command == "build-snapshot") return RunBuildSnapshot(args);
  if (args.command == "apply-delta") return RunApplyDelta(args);
  if (args.command == "sync") return RunSync(args);
  if (args.command == "serve") return RunServe(args);
  Usage();
  return 2;
}
