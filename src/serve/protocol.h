// Line-oriented request/response framing for MatchService, shared by every
// transport: one request per input line, one "ok <n>"/"err <msg>" response
// block per request. `ServeLoop` runs the protocol on any istream/ostream
// pair (so `wikimatch serve` is scriptable over stdin/stdout and tests
// drive it with stringstreams); `net::Server` runs the same per-line
// semantics over TCP sockets via `LineSplitter` + `HandleRequestLine`, so
// the two paths cannot drift apart.

#ifndef WIKIMATCH_SERVE_PROTOCOL_H_
#define WIKIMATCH_SERVE_PROTOCOL_H_

#include <atomic>
#include <cstddef>
#include <istream>
#include <ostream>
#include <string>
#include <vector>

#include "serve/match_service.h"

namespace wikimatch {
namespace serve {

/// Version of the line protocol (reported by the `version` verb so load
/// balancers and clients can gate on capabilities). 1 = the original verb
/// set; 2 adds `health` and `version`; 3 adds `sync` and `sync-status`.
inline constexpr int kProtocolVersion = 3;

/// Human-readable server release, also reported by `version`.
inline constexpr char kServerVersion[] = "0.7.0";

/// \brief One protocol verb, as documented by `help`. This table is the
/// single source of truth for the verb set: `help` renders it, Dispatch
/// rejects commands absent from it, and the docs/SERVING.md verb table is
/// asserted against it by serve_test — the three cannot drift apart.
struct VerbSpec {
  const char* verb;
  const char* args;         ///< usage suffix, "" for argument-less verbs
  const char* description;  ///< one-line summary shown by `help`
};

/// \brief Every verb of protocol version kProtocolVersion.
const std::vector<VerbSpec>& ProtocolVerbs();

/// \brief True iff `command` is a verb in ProtocolVerbs().
bool IsProtocolVerb(const std::string& command);

/// \brief The `help` response body, rendered from ProtocolVerbs().
const std::vector<std::string>& HelpLines();

/// Hard cap on one request line, on every transport. Longer lines are
/// answered with a protocol error and discarded — the TCP splitter never
/// buffers more than this per line, so a hostile peer cannot balloon the
/// server by withholding the newline.
inline constexpr size_t kMaxRequestBytes = 64 * 1024;

/// \brief Incremental splitter turning a raw byte stream into protocol
/// lines: reassembles lines across arbitrary chunk boundaries, strips a
/// trailing CR, bounds per-line memory at `max_line_bytes` (an oversized
/// line is reported once, then skipped through its terminating newline so
/// the stream resynchronizes), and surfaces an unterminated final line via
/// Finish() when the peer half-closes.
class LineSplitter {
 public:
  enum class Next {
    kLine,       ///< `*line` holds the next complete request line
    kOversized,  ///< a line exceeded max_line_bytes (reported once)
    kNeedMore    ///< no complete line buffered; Append() more bytes
  };

  explicit LineSplitter(size_t max_line_bytes = kMaxRequestBytes)
      : max_line_bytes_(max_line_bytes) {}

  /// \brief Feeds `size` raw bytes into the splitter.
  void Append(const char* data, size_t size) { buffer_.append(data, size); }

  /// \brief Pulls the next complete line (without its terminator).
  Next Pop(std::string* line);

  /// \brief Surrenders the unterminated tail as a final line at stream
  /// end; false when there is no tail (or the tail belongs to a line
  /// already reported oversized).
  bool Finish(std::string* line);

  /// \brief Bytes currently buffered (bounded by max_line_bytes + one
  /// Append's worth).
  size_t buffered() const { return buffer_.size(); }

 private:
  size_t max_line_bytes_;
  bool skipping_ = false;  // discarding an oversized line up to its \n
  std::string buffer_;
};

/// \brief What one raw request line produced.
struct LineOutcome {
  std::string response;  ///< empty: nothing to send (blank line or quit)
  bool quit = false;     ///< the client asked to end the session
};

/// \brief The per-line semantics shared by the stdin and TCP paths:
/// strips a trailing CR, skips blank lines, recognizes "quit"/"exit",
/// rejects oversized and NUL-bearing lines with a protocol error, and
/// otherwise dispatches to the service. Anything else (malformed verbs,
/// broken UTF-8 arguments) is the service's problem and comes back as its
/// "err" response — the transport never crashes on request bytes.
LineOutcome HandleRequestLine(MatchService* service, const std::string& line);

/// \brief The protocol-error response for a line the splitter (or the
/// stdin path's length check) flagged as oversized.
std::string OversizedLineResponse(size_t max_line_bytes);

/// \brief Reads request lines from `in` until EOF, a "quit"/"exit" line,
/// or `stop` (the shared shutdown flag — see net::InstallShutdownHandlers;
/// a SIGINT/SIGTERM interrupts the blocking read and the loop exits
/// cleanly) becomes true, writing each response to `out` (flushed per
/// request). Blank lines are ignored. Returns the number of requests
/// served. An unterminated final line is served like any other.
size_t ServeLoop(std::istream& in, std::ostream& out, MatchService* service,
                 const std::atomic<bool>* stop = nullptr);

}  // namespace serve
}  // namespace wikimatch

#endif  // WIKIMATCH_SERVE_PROTOCOL_H_
