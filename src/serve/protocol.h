// Line-oriented request/response loop for MatchService: one request per
// input line, one "ok <n>"/"err <msg>" response block per request. Runs on
// any istream/ostream pair, so `wikimatch serve` is scriptable over
// stdin/stdout and tests drive it with stringstreams — no sockets needed.

#ifndef WIKIMATCH_SERVE_PROTOCOL_H_
#define WIKIMATCH_SERVE_PROTOCOL_H_

#include <istream>
#include <ostream>

#include "serve/match_service.h"

namespace wikimatch {
namespace serve {

/// \brief Reads request lines from `in` until EOF or a "quit"/"exit" line,
/// writing each response to `out` (flushed per request). Blank lines are
/// ignored. Returns the number of requests served.
size_t ServeLoop(std::istream& in, std::ostream& out, MatchService* service);

}  // namespace serve
}  // namespace wikimatch

#endif  // WIKIMATCH_SERVE_PROTOCOL_H_
