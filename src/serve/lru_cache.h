// Sharded LRU result cache for the serving subsystem. Keys are request
// lines, values are rendered responses. Each shard owns its own mutex,
// recency list, and hit/miss/eviction counters, so concurrent readers on
// different shards never contend; Stats() aggregates across shards.

#ifndef WIKIMATCH_SERVE_LRU_CACHE_H_
#define WIKIMATCH_SERVE_LRU_CACHE_H_

#include <cstdint>
#include <list>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/mutex.h"
#include "util/thread_annotations.h"

namespace wikimatch {
namespace serve {

/// \brief Aggregated cache counters.
struct CacheStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t evictions = 0;
  size_t entries = 0;
  size_t capacity = 0;
};

/// \brief Thread-safe string -> string LRU cache, sharded by key hash.
class ShardedLruCache {
 public:
  /// \param capacity total entry budget across all shards (0 disables
  ///        caching: every Get misses, Put is a no-op).
  /// \param num_shards concurrency width; clamped to at least 1.
  explicit ShardedLruCache(size_t capacity, size_t num_shards = 8);

  /// \brief Looks `key` up; on a hit copies the value into `*value`,
  /// promotes the entry to most-recently-used, and returns true.
  bool Get(const std::string& key, std::string* value);

  /// \brief Inserts or refreshes `key`, evicting the least-recently-used
  /// entry of the shard when it is at capacity.
  void Put(const std::string& key, const std::string& value);

  CacheStats Stats() const;
  void Clear();

 private:
  struct Shard {
    mutable util::Mutex mu;
    // Front = most recently used.
    std::list<std::pair<std::string, std::string>> order
        WIKIMATCH_GUARDED_BY(mu);
    std::unordered_map<
        std::string,
        std::list<std::pair<std::string, std::string>>::iterator>
        index WIKIMATCH_GUARDED_BY(mu);
    uint64_t hits WIKIMATCH_GUARDED_BY(mu) = 0;
    uint64_t misses WIKIMATCH_GUARDED_BY(mu) = 0;
    uint64_t evictions WIKIMATCH_GUARDED_BY(mu) = 0;
  };

  Shard& ShardFor(const std::string& key);

  size_t capacity_per_shard_;
  size_t capacity_total_;
  std::vector<std::unique_ptr<Shard>> shards_;
};

}  // namespace serve
}  // namespace wikimatch

#endif  // WIKIMATCH_SERVE_LRU_CACHE_H_
