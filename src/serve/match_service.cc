#include "serve/match_service.h"

#include <ctime>
#include <sstream>

#include "serve/protocol.h"
#include "store/snapshot.h"
#include "text/normalize.h"

namespace wikimatch {
namespace serve {
namespace {

// Splits "a:b" into its two halves; false when there is no colon.
bool SplitPairToken(const std::string& token, std::string* a,
                    std::string* b) {
  size_t colon = token.find(':');
  if (colon == std::string::npos || colon == 0 ||
      colon + 1 == token.size()) {
    return false;
  }
  *a = token.substr(0, colon);
  *b = token.substr(colon + 1);
  return true;
}

// Reads the next whitespace-delimited token starting at `*pos`; a leading
// double quote makes the token run to the closing quote, so localized type
// names with spaces stay one field.
bool NextToken(const std::string& line, size_t* pos, std::string* token) {
  while (*pos < line.size() && line[*pos] == ' ') ++*pos;
  if (*pos >= line.size()) return false;
  if (line[*pos] == '"') {
    size_t close = line.find('"', *pos + 1);
    if (close == std::string::npos) return false;
    *token = line.substr(*pos + 1, close - *pos - 1);
    *pos = close + 1;
    return true;
  }
  size_t end = line.find(' ', *pos);
  if (end == std::string::npos) end = line.size();
  *token = line.substr(*pos, end - *pos);
  *pos = end;
  return true;
}

std::string RestOfLine(const std::string& line, size_t pos) {
  while (pos < line.size() && line[pos] == ' ') ++pos;
  size_t end = line.size();
  while (end > pos && (line[end - 1] == ' ' || line[end - 1] == '\r')) {
    --end;
  }
  return line.substr(pos, end - pos);
}

std::string RenderOk(const std::vector<std::string>& lines) {
  std::string out = "ok " + std::to_string(lines.size()) + "\n";
  for (const auto& l : lines) {
    out += l;
    out += '\n';
  }
  return out;
}

std::string RenderErr(const std::string& message) {
  return "err " + message + "\n";
}

std::string ClusterLine(const std::set<eval::AttrKey>& cluster) {
  std::string line;
  for (const auto& attr : cluster) {
    if (!line.empty()) line += " ~ ";
    line += attr.language + ":" + attr.name;
  }
  return line;
}

double SecondsSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                       start)
      .count();
}

}  // namespace

util::Result<std::unique_ptr<MatchService>> MatchService::Load(
    const std::string& path, const ServiceOptions& options) {
  auto service =
      std::unique_ptr<MatchService>(new MatchService(options));
  bool lazy = false;
  auto mapped = store::MappedSnapshot::Map(path);
  if (mapped.ok()) {
    // New-format snapshot: defer decoding. Only the meta section (a few
    // hundred bytes) is read now, so Load() is O(1) in the snapshot size.
    // A directory missing the mandatory sections would fail at first use,
    // so route that file to the parse path, which owns the error message.
    const std::shared_ptr<store::MappedSnapshot>& snap = mapped.ValueOrDie();
    bool have_corpus = false;
    bool have_dictionary = false;
    for (size_t i = 0; i < snap->num_sections(); ++i) {
      if (snap->section_kind(i) == store::SectionKind::kCorpus) {
        have_corpus = true;
      }
      if (snap->section_kind(i) == store::SectionKind::kDictionary) {
        have_dictionary = true;
      }
    }
    store::Snapshot meta_only;
    util::Status meta_status = util::Status::OK();
    if (have_corpus && have_dictionary) {
      auto meta_payload = snap->PayloadOfKind(store::SectionKind::kMeta);
      if (meta_payload.ok()) {
        meta_status = store::DecodeSnapshotSection(
            store::SectionKind::kMeta, meta_payload.ValueOrDie(), &meta_only);
      } else if (meta_payload.status().code() !=
                 util::StatusCode::kNotFound) {
        meta_status = meta_payload.status();  // corrupt meta: parse decides
      }  // no meta section (generation 0): serve the default meta
    }
    if (have_corpus && have_dictionary && meta_status.ok()) {
      auto boot = std::make_shared<GenerationState>();
      boot->snapshot = std::move(meta_only);
      boot->mapped = std::move(mapped).ValueOrDie();
      boot->load_seq = 1;
      boot->loaded_unix = static_cast<int64_t>(std::time(nullptr));
      boot->loaded_at = Clock::now();
      {
        util::MutexLock lock(service->gen_mu_);
        service->boot_gen_ = std::move(boot);
      }
      service->loads_.store(1, std::memory_order_relaxed);
      lazy = true;
    }
  }
  if (!lazy) {
    // Legacy layout (Map → NotFound) or anything else Map could not
    // establish: the streaming parse path reads both layouts and produces
    // the descriptive error for genuinely broken files.
    auto snapshot = store::ReadSnapshotFile(path);
    if (!snapshot.ok()) return snapshot.status();
    auto gen =
        BuildGeneration(std::move(snapshot).ValueOrDie(), 1, nullptr);
    {
      util::MutexLock lock(service->gen_mu_);
      service->gen_ = std::move(gen);
    }
    service->loads_.store(1, std::memory_order_relaxed);
  }
  {
    // Not yet visible to other threads, but taking the lock keeps the
    // guarded-field proof unconditional (and it is uncontended here).
    util::MutexLock lock(service->reload_mu_);
    service->source_path_ = path;
  }
  return service;
}

std::unique_ptr<MatchService> MatchService::Create(
    store::Snapshot snapshot, const ServiceOptions& options) {
  auto service =
      std::unique_ptr<MatchService>(new MatchService(options));
  auto gen = BuildGeneration(std::move(snapshot), 1, nullptr);
  {
    util::MutexLock lock(service->gen_mu_);
    service->gen_ = std::move(gen);
  }
  service->loads_.store(1, std::memory_order_relaxed);
  return service;
}

MatchService::MatchService(const ServiceOptions& options)
    : options_(options),
      cache_(options.cache_capacity, options.cache_shards),
      started_(Clock::now()) {}

std::shared_ptr<const MatchService::GenerationState>
MatchService::BuildGeneration(store::Snapshot snapshot, uint64_t load_seq,
                              std::shared_ptr<store::MappedSnapshot> mapped) {
  auto gen = std::make_shared<GenerationState>();
  gen->snapshot = std::move(snapshot);
  gen->mapped = std::move(mapped);
  gen->load_seq = load_seq;
  gen->loaded_unix = static_cast<int64_t>(std::time(nullptr));
  gen->loaded_at = Clock::now();
  for (auto& [pair, result] : gen->snapshot.pipelines) {
    PairServing serving;
    serving.result = &result;
    for (const auto& tr : result.per_type) {
      // Pre-compress so concurrent readers never write to the lazy
      // union-find (see MatchSet::CompressPaths).
      tr.alignment.matches.CompressPaths();
      serving.per_type.emplace(tr.type_b, &tr.alignment.matches);
    }
    serving.translator = std::make_unique<query::QueryTranslator>(
        pair.first, pair.second, result.type_matches, serving.per_type,
        &gen->snapshot.dictionary);
    gen->pairs.emplace(pair, std::move(serving));
  }
  {
    // Index the persisted sync report by (pair_lang, type_b). Updates do
    // not carry the type, so the cells' (lang, title) -> key map assigns
    // each update through whichever side names the pair-language article.
    const sync::SyncReport& report = gen->snapshot.sync_report;
    std::map<std::pair<std::string, std::string>,
             std::pair<std::string, std::string>>
        key_of_title;
    for (size_t i = 0; i < report.cells.size(); ++i) {
      const sync::CellVerdict& v = report.cells[i];
      std::pair<std::string, std::string> key{v.pair_lang, v.type_b};
      gen->sync_cells[key].push_back(i);
      key_of_title.emplace(std::make_pair(v.pair_lang, v.pair_title), key);
    }
    for (size_t i = 0; i < report.updates.size(); ++i) {
      const sync::PropagationUpdate& u = report.updates[i];
      auto it = key_of_title.find({u.source_lang, u.source_title});
      if (it == key_of_title.end()) {
        it = key_of_title.find({u.target_lang, u.target_title});
      }
      if (it != key_of_title.end()) {
        gen->sync_updates[it->second].push_back(i);
      }
    }
  }
  return gen;
}

std::shared_ptr<const MatchService::GenerationState> MatchService::Current()
    const {
  util::MutexLock lock(gen_mu_);
  return gen_ != nullptr ? gen_ : boot_gen_;
}

util::Result<std::shared_ptr<const MatchService::GenerationState>>
MatchService::Core() const {
  {
    util::MutexLock lock(gen_mu_);
    if (gen_ != nullptr) return gen_;
  }
  // Materialize once: core_mu_ serializes the decode; every other
  // core-needing request blocks here and then finds gen_ set (or the
  // sticky error).
  util::MutexLock core_lock(core_mu_);
  std::shared_ptr<const GenerationState> boot;
  {
    util::MutexLock lock(gen_mu_);
    if (gen_ != nullptr) return gen_;  // built while we waited
    boot = boot_gen_;
  }
  if (!core_error_.ok()) return core_error_;
  if (boot == nullptr || boot->mapped == nullptr) {
    return util::Status::Internal(
        "no decoded generation and no mapped snapshot to build one from");
  }
  auto decoded = boot->mapped->Decode();
  if (!decoded.ok()) {
    core_error_ = decoded.status();  // sticky until a successful Reload()
    return core_error_;
  }
  auto gen = BuildGeneration(std::move(decoded).ValueOrDie(), boot->load_seq,
                             boot->mapped);
  std::shared_ptr<const GenerationState> out;
  {
    util::MutexLock lock(gen_mu_);
    // A Reload() that raced the decode wins: its generation is newer.
    if (gen_ == nullptr) gen_ = std::move(gen);
    out = gen_;
  }
  return out;
}

util::Status MatchService::Reload(const std::string& path) {
  // One writer at a time; readers are never blocked by a rebuild.
  util::MutexLock reload_lock(reload_mu_);
  std::string source = path.empty() ? source_path_ : path;
  if (source.empty()) {
    return util::Status::InvalidArgument(
        "no snapshot path to reload from (service was built in memory; "
        "pass an explicit path)");
  }
  // Deliberately eager, unlike Load(): decode *before* swapping so that on
  // any error the previous generation keeps serving untouched.
  store::Snapshot snapshot;
  std::shared_ptr<store::MappedSnapshot> mapped;
  auto mapped_result = store::MappedSnapshot::Map(source);
  if (mapped_result.ok()) {
    auto decoded = mapped_result.ValueOrDie()->Decode();
    if (!decoded.ok()) return decoded.status();
    snapshot = std::move(decoded).ValueOrDie();
    mapped = std::move(mapped_result).ValueOrDie();
  } else {
    auto parsed = store::ReadSnapshotFile(source);
    if (!parsed.ok()) return parsed.status();
    snapshot = std::move(parsed).ValueOrDie();
  }
  auto gen = BuildGeneration(std::move(snapshot),
                             loads_.load(std::memory_order_relaxed) + 1,
                             std::move(mapped));
  {
    util::MutexLock lock(gen_mu_);
    gen_ = std::move(gen);
  }
  {
    // A fresh generation supersedes any sticky lazy-decode failure.
    util::MutexLock core_lock(core_mu_);
    core_error_ = util::Status::OK();
  }
  loads_.fetch_add(1, std::memory_order_relaxed);
  source_path_ = source;
  return util::Status::OK();
}

const MatchService::PairServing* MatchService::GenerationState::FindPair(
    const std::string& lang_a, const std::string& lang_b) const {
  auto it = pairs.find({lang_a, lang_b});
  return it == pairs.end() ? nullptr : &it->second;
}

util::Result<std::vector<std::string>> MatchService::TranslateAttribute(
    const std::string& lang_a, const std::string& lang_b,
    const std::string& type_b, const std::string& lang,
    const std::string& name) const {
  auto core = Core();
  if (!core.ok()) return core.status();
  const auto& gen = core.ValueOrDie();
  const PairServing* pair = gen->FindPair(lang_a, lang_b);
  if (pair == nullptr) {
    return util::Status::NotFound("no pipeline for pair " + lang_a + ":" +
                                  lang_b + " in snapshot");
  }
  if (lang != lang_a && lang != lang_b) {
    return util::Status::InvalidArgument("language " + lang +
                                         " is not part of pair " + lang_a +
                                         ":" + lang_b);
  }
  auto it = pair->per_type.find(type_b);
  if (it == pair->per_type.end()) {
    return util::Status::NotFound("no alignment for type " + type_b +
                                  " in pair " + lang_a + ":" + lang_b);
  }
  const std::string& other = lang == lang_a ? lang_b : lang_a;
  eval::AttrKey key{lang, text::NormalizeAttributeName(name)};
  std::vector<std::string> out;
  for (const auto& target : it->second->CorrespondentsOf(key, other)) {
    out.push_back(target.language + ":" + target.name);
  }
  return out;
}

util::Result<std::vector<std::string>> MatchService::ListAlignments(
    const std::string& lang_a, const std::string& lang_b,
    const std::string& type_b) const {
  auto core = Core();
  if (!core.ok()) return core.status();
  const auto& gen = core.ValueOrDie();
  const PairServing* pair = gen->FindPair(lang_a, lang_b);
  if (pair == nullptr) {
    return util::Status::NotFound("no pipeline for pair " + lang_a + ":" +
                                  lang_b + " in snapshot");
  }
  auto it = pair->per_type.find(type_b);
  if (it == pair->per_type.end()) {
    return util::Status::NotFound("no alignment for type " + type_b +
                                  " in pair " + lang_a + ":" + lang_b);
  }
  std::vector<std::string> out;
  for (const auto& cluster : it->second->Clusters()) {
    out.push_back(ClusterLine(cluster));
  }
  return out;
}

util::Result<ServedQueryResult> MatchService::EvaluateTranslatedQuery(
    const std::string& lang_a, const std::string& lang_b,
    const std::string& query_text) const {
  auto core = Core();
  if (!core.ok()) return core.status();
  const auto& gen = core.ValueOrDie();
  const PairServing* pair = gen->FindPair(lang_a, lang_b);
  if (pair == nullptr) {
    return util::Status::NotFound("no pipeline for pair " + lang_a + ":" +
                                  lang_b + " in snapshot");
  }
  auto parsed = query::ParseCQuery(query_text);
  if (!parsed.ok()) return parsed.status().WithContext("parsing c-query");
  query::TranslationReport report;
  auto translated = pair->translator->Translate(*parsed, &report);
  if (!translated.ok()) {
    return translated.status().WithContext("translating c-query");
  }
  query::QueryEvaluator evaluator(&gen->snapshot.corpus, lang_b);
  query::EvaluatorOptions eval_options;
  eval_options.top_k = options_.query_top_k;
  auto answers = evaluator.Run(*translated, eval_options);
  if (!answers.ok()) {
    return answers.status().WithContext("evaluating translated c-query");
  }
  ServedQueryResult out;
  out.translated_query = translated->ToString();
  out.constraints_translated = report.constraints_translated;
  out.constraints_relaxed = report.constraints_relaxed;
  out.answers.reserve(answers->size());
  for (const auto& answer : *answers) {
    ServedAnswer served;
    served.title = gen->snapshot.corpus.Get(answer.article).title;
    served.score = answer.score;
    served.projections = answer.projections;
    out.answers.push_back(std::move(served));
  }
  return out;
}

std::string MatchService::Dispatch(const GenerationState& gen,
                                   const std::string& line,
                                   bool* cacheable) {
  *cacheable = false;
  size_t pos = 0;
  std::string command;
  if (!NextToken(line, &pos, &command)) return RenderErr("empty request");

  // One gate for the whole verb set: anything outside the ProtocolVerbs()
  // table is rejected here, so the table, `help`, and the dispatch chain
  // below cannot disagree about what the protocol accepts.
  if (!IsProtocolVerb(command)) {
    return RenderErr("unknown request '" + command +
                     "' (try 'help' for the protocol)");
  }

  if (command == "help") return RenderOk(HelpLines());
  if (command == "quit" || command == "exit") {
    // Transports intercept quit before Dispatch (protocol.cc); answering
    // here keeps direct Handle() callers (tests, embedders) working.
    return RenderOk({"bye"});
  }
  if (command == "health") {
    // Deliberately cheap (no cache probe, no pair lookup): load balancers
    // poll this at high frequency, and the net server's drain logic uses
    // it as the liveness signal that the process still answers.
    std::ostringstream os;
    os << "healthy generation=" << gen.snapshot.meta.generation
       << " load_seq=" << gen.load_seq
       << " uptime_s=" << SecondsSince(started_);
    return RenderOk({os.str()});
  }
  if (command == "version") {
    std::ostringstream os;
    os << "wikimatch " << kServerVersion << " protocol=" << kProtocolVersion
       << " snapshot_format=" << store::kSnapshotVersion;
    return RenderOk({os.str()});
  }
  if (command == "stats") {
    ServiceStats stats = Stats();
    std::ostringstream os;
    os << "requests=" << stats.requests << " errors=" << stats.errors
       << " generation=" << gen.snapshot.meta.generation
       << " loads=" << stats.loads << " loaded_unix=" << gen.loaded_unix
       << " uptime_s=" << stats.uptime_s
       << " generation_age_s=" << SecondsSince(gen.loaded_at)
       << " cache_hits=" << stats.cache.hits
       << " cache_misses=" << stats.cache.misses
       << " cache_evictions=" << stats.cache.evictions
       << " cache_entries=" << stats.cache.entries
       << " cache_capacity=" << stats.cache.capacity;
    std::vector<std::string> lines = {os.str()};
    // Build-time pipeline stats travel inside the snapshot; absent (all
    // zero) for snapshots written before they were recorded.
    for (const auto& [pair, serving] : gen.pairs) {
      lines.push_back("pipeline " + pair.first + ":" + pair.second + " " +
                      serving.result->stats.ToString());
    }
    return RenderOk(lines);
  }
  if (command == "generation") {
    std::ostringstream os;
    os << "generation=" << gen.snapshot.meta.generation
       << " load_seq=" << gen.load_seq
       << " loaded_unix=" << gen.loaded_unix
       << " age_s=" << SecondsSince(gen.loaded_at)
       << " deltas_applied=" << gen.snapshot.meta.history.size();
    return RenderOk({os.str()});
  }
  if (command == "reload") {
    std::string target = RestOfLine(line, pos);
    util::Status status = Reload(target);
    if (!status.ok()) return RenderErr(status.ToString());
    auto fresh = Current();
    std::ostringstream os;
    os << "reloaded generation=" << fresh->snapshot.meta.generation
       << " load_seq=" << fresh->load_seq;
    return RenderOk({os.str()});
  }
  if (command == "pairs") {
    std::vector<std::string> lines;
    for (const auto& [pair, serving] : gen.pairs) {
      lines.push_back(pair.first + ":" + pair.second);
    }
    return RenderOk(lines);
  }
  if (command == "sync-status") {
    const sync::SyncReport& report = gen.snapshot.sync_report;
    std::ostringstream os;
    os << "sync_generation=" << report.generation
       << " cells=" << report.cells.size()
       << " updates=" << report.updates.size();
    std::vector<std::string> lines = {os.str()};
    for (const auto& [key, counts] : report.Summaries()) {
      std::ostringstream row;
      row << key.first << "\t" << key.second << "\tin_sync=" << counts.in_sync
          << " stale=" << counts.stale << " missing=" << counts.missing
          << " conflict=" << counts.conflict
          << " unverifiable=" << counts.unverifiable;
      lines.push_back(row.str());
    }
    *cacheable = true;
    return RenderOk(lines);
  }

  // Remaining commands address a language pair.
  std::string pair_token, lang_a, lang_b;
  if (!NextToken(line, &pos, &pair_token) ||
      !SplitPairToken(pair_token, &lang_a, &lang_b)) {
    return RenderErr("expected a language pair like pt:en after '" +
                     command + "'");
  }

  if (command == "types") {
    const PairServing* pair = gen.FindPair(lang_a, lang_b);
    if (pair == nullptr) {
      return RenderErr("no pipeline for pair " + lang_a + ":" + lang_b +
                       " in snapshot");
    }
    std::vector<std::string> lines;
    for (const auto& tm : pair->result->type_matches) {
      std::ostringstream os;
      os << tm.type_a << "\t" << tm.type_b << "\t" << tm.votes << "\t"
         << tm.confidence;
      lines.push_back(os.str());
    }
    *cacheable = true;
    return RenderOk(lines);
  }

  if (command == "attr") {
    std::string type_b, lang;
    if (!NextToken(line, &pos, &type_b) || !NextToken(line, &pos, &lang)) {
      return RenderErr("usage: attr <src>:<tgt> <type_b> <lang> <attr>");
    }
    std::string name = RestOfLine(line, pos);
    if (name.empty()) {
      return RenderErr("usage: attr <src>:<tgt> <type_b> <lang> <attr>");
    }
    auto result = TranslateAttribute(lang_a, lang_b, type_b, lang, name);
    if (!result.ok()) return RenderErr(result.status().ToString());
    *cacheable = true;
    return RenderOk(*result);
  }

  if (command == "alignments") {
    std::string type_b;
    if (!NextToken(line, &pos, &type_b) || type_b.empty()) {
      return RenderErr("usage: alignments <src>:<tgt> <type_b>");
    }
    auto result = ListAlignments(lang_a, lang_b, type_b);
    if (!result.ok()) return RenderErr(result.status().ToString());
    *cacheable = true;
    return RenderOk(*result);
  }

  if (command == "query") {
    std::string query_text = RestOfLine(line, pos);
    if (query_text.empty()) {
      return RenderErr("usage: query <src>:<tgt> <c-query>");
    }
    auto result = EvaluateTranslatedQuery(lang_a, lang_b, query_text);
    if (!result.ok()) return RenderErr(result.status().ToString());
    std::vector<std::string> lines;
    lines.push_back("translated " +
                    std::to_string(result->constraints_translated) + " " +
                    std::to_string(result->constraints_relaxed) + " " +
                    result->translated_query);
    for (const auto& answer : result->answers) {
      std::string l = answer.title;
      for (const auto& projection : answer.projections) {
        l += '\t';
        l += projection;
      }
      lines.push_back(std::move(l));
    }
    *cacheable = true;
    return RenderOk(lines);
  }

  if (command == "sync") {
    std::string type_b;
    if (!NextToken(line, &pos, &type_b) || type_b.empty()) {
      return RenderErr("usage: sync <src>:<tgt> <type_b>");
    }
    if (gen.FindPair(lang_a, lang_b) == nullptr) {
      return RenderErr("no pipeline for pair " + lang_a + ":" + lang_b +
                       " in snapshot");
    }
    const sync::SyncReport& report = gen.snapshot.sync_report;
    if (report.empty()) {
      return RenderErr(
          "no sync report in snapshot (run `wikimatch sync` and reload)");
    }
    // The non-hub edition is the pair language of the report's rows; the
    // index was built per (pair_lang, type_b) so both orderings of the
    // pair token find the same rows.
    std::vector<std::string> lines;
    lines.push_back("sync_generation=" + std::to_string(report.generation));
    auto emit = [&](const std::string& pair_lang) {
      auto cit = gen.sync_cells.find({pair_lang, type_b});
      if (cit != gen.sync_cells.end()) {
        for (size_t idx : cit->second) {
          const sync::CellVerdict& v = report.cells[idx];
          std::ostringstream os;
          os << "cell\t" << v.pair_title << "\t" << v.hub_title << "\t"
             << v.pair_attr << "\t" << v.hub_attr << "\t"
             << sync::CellClassName(v.cls) << "\t" << v.score;
          lines.push_back(os.str());
        }
      }
      auto uit = gen.sync_updates.find({pair_lang, type_b});
      if (uit != gen.sync_updates.end()) {
        for (size_t idx : uit->second) {
          const sync::PropagationUpdate& u = report.updates[idx];
          std::ostringstream os;
          os << "update\t" << u.source_lang << "\t" << u.source_title << "\t"
             << u.source_attr << "\t" << u.target_lang << "\t"
             << u.target_title << "\t" << u.target_attr << "\t"
             << u.evidence_score << "\t" << u.proposed_value;
          lines.push_back(os.str());
        }
      }
    };
    // One of the two languages is the hub; the other keys the report.
    emit(lang_a);
    if (lang_b != lang_a) emit(lang_b);
    *cacheable = true;
    return RenderOk(lines);
  }

  // Every table verb is handled above; reaching here means the table and
  // the dispatch chain drifted apart (a bug the help-coverage test catches).
  return RenderErr("verb '" + command + "' is not implemented");
}

namespace {

// Verbs a meta-only boot generation can answer, so an mmap-loaded service
// responds to health checks and protocol chatter before (and regardless
// of) the first core decode. `reload` is here so a corrupt snapshot can be
// replaced without first paying — or failing — a decode of the bad one.
bool IsCoreFreeVerb(const std::string& command) {
  return command == "help" || command == "quit" || command == "exit" ||
         command == "health" || command == "version" ||
         command == "generation" || command == "reload";
}

}  // namespace

std::string MatchService::Handle(const std::string& line) {
  requests_.fetch_add(1, std::memory_order_relaxed);
  // Pin one generation for the whole request. The cache key carries its
  // load sequence so a swap instantly invalidates every older entry
  // (they become unaddressable and age out of the LRU).
  auto gen = Current();
  std::string key = std::to_string(gen->load_seq) + '\x1f' + line;
  std::string cached;
  if (cache_.Get(key, &cached)) return cached;
  // Cache miss: data-bearing verbs need the decoded core (a no-op once it
  // exists). The classification runs only here so hits — the hot path —
  // never pay the token parse. A boot generation and the core it decodes
  // into share a load_seq, so the key above stays valid either way.
  size_t peek = 0;
  std::string command;
  NextToken(line, &peek, &command);
  if (IsProtocolVerb(command) && !IsCoreFreeVerb(command)) {
    auto core = Core();
    if (!core.ok()) {
      errors_.fetch_add(1, std::memory_order_relaxed);
      return RenderErr(core.status().ToString());
    }
    gen = std::move(core).ValueOrDie();
    // A reload racing between the pin and Core() can hand back a newer
    // generation; re-key so the cached response stays coherent with the
    // generation that produced it.
    std::string core_key = std::to_string(gen->load_seq) + '\x1f' + line;
    if (core_key != key) key = std::move(core_key);
  }
  bool cacheable = false;
  std::string response = Dispatch(*gen, line, &cacheable);
  if (cacheable) {
    cache_.Put(key, response);
  } else if (response.compare(0, 3, "err") == 0) {
    errors_.fetch_add(1, std::memory_order_relaxed);
  }
  return response;
}

ServiceStats MatchService::Stats() const {
  auto gen = Current();
  ServiceStats stats;
  stats.requests = requests_.load(std::memory_order_relaxed);
  stats.errors = errors_.load(std::memory_order_relaxed);
  stats.generation = gen->snapshot.meta.generation;
  stats.loads = loads_.load(std::memory_order_relaxed);
  stats.loaded_unix = gen->loaded_unix;
  stats.uptime_s = SecondsSince(started_);
  stats.generation_age_s = SecondsSince(gen->loaded_at);
  stats.cache = cache_.Stats();
  return stats;
}

std::vector<store::LanguagePair> MatchService::Pairs() const {
  auto gen = Current();
  std::vector<store::LanguagePair> out;
  out.reserve(gen->pairs.size());
  for (const auto& [pair, serving] : gen->pairs) out.push_back(pair);
  return out;
}

size_t MatchService::CorpusSize() const { return Current()->snapshot.corpus.size(); }

uint64_t MatchService::Generation() const {
  return Current()->snapshot.meta.generation;
}

bool MatchService::CoreLoaded() const {
  util::MutexLock lock(gen_mu_);
  return gen_ != nullptr;
}

}  // namespace serve
}  // namespace wikimatch
