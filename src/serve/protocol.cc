#include "serve/protocol.h"

#include <string>

namespace wikimatch {
namespace serve {

size_t ServeLoop(std::istream& in, std::ostream& out,
                 MatchService* service) {
  size_t served = 0;
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty() && line.back() == '\r') line.pop_back();
    if (line.empty()) continue;
    if (line == "quit" || line == "exit") break;
    out << service->Handle(line);
    out.flush();
    ++served;
  }
  return served;
}

}  // namespace serve
}  // namespace wikimatch
