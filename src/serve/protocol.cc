#include "serve/protocol.h"

#include <algorithm>
#include <string>
#include <vector>

namespace wikimatch {
namespace serve {

const std::vector<VerbSpec>& ProtocolVerbs() {
  static const std::vector<VerbSpec> kVerbs = {
      {"attr", "<src>:<tgt> <type_b> <lang> <attribute>",
       "correspondents of the attribute in the pair's other language"},
      {"alignments", "<src>:<tgt> <type_b>",
       "all alignment clusters of the type"},
      {"query", "<src>:<tgt> <c-query>",
       "translate the c-query from <src> and evaluate it in <tgt>"},
      {"sync", "<src>:<tgt> <type_b>",
       "cell verdicts and propagation updates of the type (docs/SYNC.md)"},
      {"sync-status", "",
       "sync-report generation and per-language verdict counts"},
      {"types", "<src>:<tgt>", "entity-type mapping of the pair"},
      {"pairs", "", "language pairs in the snapshot"},
      {"stats", "", "service and cache counters"},
      {"health", "", "one-line liveness probe (load balancers, drain checks)"},
      {"version", "", "server, protocol, and snapshot-format versions"},
      {"generation", "", "generation of the snapshot being served"},
      {"reload", "[<path>]",
       "hot-swap to the snapshot at <path> (default: the loaded one)"},
      {"help", "", "this verb table"},
      {"quit", "", "end the session"},
  };
  return kVerbs;
}

bool IsProtocolVerb(const std::string& command) {
  if (command == "exit") return true;  // undocumented alias for quit
  for (const VerbSpec& spec : ProtocolVerbs()) {
    if (command == spec.verb) return true;
  }
  return false;
}

const std::vector<std::string>& HelpLines() {
  static const std::vector<std::string> kLines = [] {
    size_t width = 0;
    auto usage = [](const VerbSpec& spec) {
      std::string u = spec.verb;
      if (spec.args[0] != '\0') u += std::string(" ") + spec.args;
      return u;
    };
    for (const VerbSpec& spec : ProtocolVerbs()) {
      width = std::max(width, usage(spec).size());
    }
    std::vector<std::string> lines;
    for (const VerbSpec& spec : ProtocolVerbs()) {
      std::string line = usage(spec);
      line.append(width + 3 - line.size(), ' ');
      line += spec.description;
      lines.push_back(std::move(line));
    }
    lines.push_back(
        "(quote multi-word type names: alignments pt:en \"artista "
        "musical\")");
    return lines;
  }();
  return kLines;
}

LineSplitter::Next LineSplitter::Pop(std::string* line) {
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (skipping_) {
      // Discarding an already-reported oversized line: throw bytes away
      // until its terminator shows up, then resume normal parsing.
      if (newline == std::string::npos) {
        buffer_.clear();
        return Next::kNeedMore;
      }
      buffer_.erase(0, newline + 1);
      skipping_ = false;
      continue;
    }
    if (newline == std::string::npos) {
      if (buffer_.size() > max_line_bytes_) {
        // The line is already too long and its end has not arrived; drop
        // what we have (bounding memory) and skip the rest as it streams.
        buffer_.clear();
        skipping_ = true;
        return Next::kOversized;
      }
      return Next::kNeedMore;
    }
    if (newline > max_line_bytes_) {
      buffer_.erase(0, newline + 1);
      return Next::kOversized;
    }
    line->assign(buffer_, 0, newline);
    if (!line->empty() && line->back() == '\r') line->pop_back();
    buffer_.erase(0, newline + 1);
    return Next::kLine;
  }
}

bool LineSplitter::Finish(std::string* line) {
  if (skipping_) {
    // The tail belongs to a line already reported oversized.
    skipping_ = false;
    buffer_.clear();
    return false;
  }
  if (buffer_.empty()) return false;
  *line = std::move(buffer_);
  buffer_.clear();
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return !line->empty();
}

LineOutcome HandleRequestLine(MatchService* service,
                              const std::string& raw) {
  LineOutcome out;
  std::string line = raw;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) return out;
  if (line == "quit" || line == "exit") {
    out.quit = true;
    return out;
  }
  if (line.size() > kMaxRequestBytes) {
    // The TCP splitter enforces its own (possibly smaller) cap during
    // reassembly; this catches the stdin path, where getline is unbounded.
    out.response = OversizedLineResponse(kMaxRequestBytes);
    return out;
  }
  if (line.find('\0') != std::string::npos) {
    out.response = "err protocol: request contains a NUL byte\n";
    return out;
  }
  out.response = service->Handle(line);
  return out;
}

std::string OversizedLineResponse(size_t max_line_bytes) {
  return "err protocol: request line exceeds " +
         std::to_string(max_line_bytes) + " bytes\n";
}

size_t ServeLoop(std::istream& in, std::ostream& out, MatchService* service,
                 const std::atomic<bool>* stop) {
  size_t served = 0;
  std::string line;
  while ((stop == nullptr || !stop->load(std::memory_order_acquire)) &&
         std::getline(in, line)) {
    LineOutcome outcome = HandleRequestLine(service, line);
    if (outcome.quit) break;
    if (outcome.response.empty()) continue;
    out << outcome.response;
    out.flush();
    ++served;
  }
  return served;
}

}  // namespace serve
}  // namespace wikimatch
