#include "serve/protocol.h"

#include <string>

namespace wikimatch {
namespace serve {

LineSplitter::Next LineSplitter::Pop(std::string* line) {
  for (;;) {
    size_t newline = buffer_.find('\n');
    if (skipping_) {
      // Discarding an already-reported oversized line: throw bytes away
      // until its terminator shows up, then resume normal parsing.
      if (newline == std::string::npos) {
        buffer_.clear();
        return Next::kNeedMore;
      }
      buffer_.erase(0, newline + 1);
      skipping_ = false;
      continue;
    }
    if (newline == std::string::npos) {
      if (buffer_.size() > max_line_bytes_) {
        // The line is already too long and its end has not arrived; drop
        // what we have (bounding memory) and skip the rest as it streams.
        buffer_.clear();
        skipping_ = true;
        return Next::kOversized;
      }
      return Next::kNeedMore;
    }
    if (newline > max_line_bytes_) {
      buffer_.erase(0, newline + 1);
      return Next::kOversized;
    }
    line->assign(buffer_, 0, newline);
    if (!line->empty() && line->back() == '\r') line->pop_back();
    buffer_.erase(0, newline + 1);
    return Next::kLine;
  }
}

bool LineSplitter::Finish(std::string* line) {
  if (skipping_) {
    // The tail belongs to a line already reported oversized.
    skipping_ = false;
    buffer_.clear();
    return false;
  }
  if (buffer_.empty()) return false;
  *line = std::move(buffer_);
  buffer_.clear();
  if (!line->empty() && line->back() == '\r') line->pop_back();
  return !line->empty();
}

LineOutcome HandleRequestLine(MatchService* service,
                              const std::string& raw) {
  LineOutcome out;
  std::string line = raw;
  if (!line.empty() && line.back() == '\r') line.pop_back();
  if (line.empty()) return out;
  if (line == "quit" || line == "exit") {
    out.quit = true;
    return out;
  }
  if (line.size() > kMaxRequestBytes) {
    // The TCP splitter enforces its own (possibly smaller) cap during
    // reassembly; this catches the stdin path, where getline is unbounded.
    out.response = OversizedLineResponse(kMaxRequestBytes);
    return out;
  }
  if (line.find('\0') != std::string::npos) {
    out.response = "err protocol: request contains a NUL byte\n";
    return out;
  }
  out.response = service->Handle(line);
  return out;
}

std::string OversizedLineResponse(size_t max_line_bytes) {
  return "err protocol: request line exceeds " +
         std::to_string(max_line_bytes) + " bytes\n";
}

size_t ServeLoop(std::istream& in, std::ostream& out, MatchService* service,
                 const std::atomic<bool>* stop) {
  size_t served = 0;
  std::string line;
  while ((stop == nullptr || !stop->load(std::memory_order_acquire)) &&
         std::getline(in, line)) {
    LineOutcome outcome = HandleRequestLine(service, line);
    if (outcome.quit) break;
    if (outcome.response.empty()) continue;
    out << outcome.response;
    out.flush();
    ++served;
  }
  return served;
}

}  // namespace serve
}  // namespace wikimatch
