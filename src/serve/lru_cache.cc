#include "serve/lru_cache.h"

#include <functional>

namespace wikimatch {
namespace serve {

ShardedLruCache::ShardedLruCache(size_t capacity, size_t num_shards) {
  if (num_shards == 0) num_shards = 1;
  if (num_shards > capacity && capacity > 0) num_shards = capacity;
  capacity_per_shard_ = capacity == 0 ? 0 : (capacity + num_shards - 1) /
                                            num_shards;
  capacity_total_ = capacity;
  shards_.reserve(num_shards);
  for (size_t i = 0; i < num_shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
}

ShardedLruCache::Shard& ShardedLruCache::ShardFor(const std::string& key) {
  return *shards_[std::hash<std::string>{}(key) % shards_.size()];
}

bool ShardedLruCache::Get(const std::string& key, std::string* value) {
  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it == shard.index.end()) {
    ++shard.misses;
    return false;
  }
  ++shard.hits;
  shard.order.splice(shard.order.begin(), shard.order, it->second);
  *value = it->second->second;
  return true;
}

void ShardedLruCache::Put(const std::string& key, const std::string& value) {
  if (capacity_per_shard_ == 0) return;
  Shard& shard = ShardFor(key);
  util::MutexLock lock(shard.mu);
  auto it = shard.index.find(key);
  if (it != shard.index.end()) {
    it->second->second = value;
    shard.order.splice(shard.order.begin(), shard.order, it->second);
    return;
  }
  if (shard.index.size() >= capacity_per_shard_) {
    auto& victim = shard.order.back();
    shard.index.erase(victim.first);
    shard.order.pop_back();
    ++shard.evictions;
  }
  shard.order.emplace_front(key, value);
  shard.index.emplace(key, shard.order.begin());
}

CacheStats ShardedLruCache::Stats() const {
  CacheStats stats;
  stats.capacity = capacity_total_;
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    stats.hits += shard->hits;
    stats.misses += shard->misses;
    stats.evictions += shard->evictions;
    stats.entries += shard->index.size();
  }
  return stats;
}

void ShardedLruCache::Clear() {
  for (const auto& shard : shards_) {
    util::MutexLock lock(shard->mu);
    shard->order.clear();
    shard->index.clear();
  }
}

}  // namespace serve
}  // namespace wikimatch
