// MatchService: the in-process serving layer. Loads a snapshot once (the
// expensive offline matching already done by `wikimatch build-snapshot`)
// and answers three request types — attribute-translation lookup, per-type
// alignment listing, and translated c-query evaluation — from immutable
// in-memory state behind a sharded LRU result cache.
//
// Thread safety: after construction every lookup structure is read-only
// (MatchSets are fully path-compressed at load so even their lazy
// union-find performs no writes), the cache is internally synchronized,
// and counters are atomic — Handle() may be called from any number of
// threads concurrently.

#ifndef WIKIMATCH_SERVE_MATCH_SERVICE_H_
#define WIKIMATCH_SERVE_MATCH_SERVICE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "query/evaluator.h"
#include "query/translator.h"
#include "serve/lru_cache.h"
#include "store/snapshot.h"
#include "util/result.h"

namespace wikimatch {
namespace serve {

/// \brief Serving configuration.
struct ServiceOptions {
  /// Total LRU result-cache entries (0 disables caching).
  size_t cache_capacity = 4096;
  /// Cache shards (concurrency width).
  size_t cache_shards = 8;
  /// Maximum answers per query request.
  size_t query_top_k = 20;
};

/// \brief Observability counters.
struct ServiceStats {
  uint64_t requests = 0;       ///< Handle() calls, including errors
  uint64_t errors = 0;         ///< requests answered with "err"
  CacheStats cache;
};

/// \brief One answer of a translated query.
struct ServedAnswer {
  std::string title;
  double score = 0.0;
  std::vector<std::string> projections;
};

/// \brief Result of a translated c-query evaluation.
struct ServedQueryResult {
  std::string translated_query;
  size_t constraints_translated = 0;
  size_t constraints_relaxed = 0;
  std::vector<ServedAnswer> answers;
};

/// \brief Thread-safe snapshot-backed match server.
class MatchService {
 public:
  /// \brief Reads the snapshot at `path` and builds the serving indexes.
  static util::Result<std::unique_ptr<MatchService>> Load(
      const std::string& path, const ServiceOptions& options = {});

  /// \brief Builds a service from an in-memory snapshot (tests, bench).
  static std::unique_ptr<MatchService> Create(
      store::Snapshot snapshot, const ServiceOptions& options = {});

  // ---- Typed API (uncached) ----------------------------------------------

  /// \brief Correspondents of attribute (`lang`, `name`) of the pair's
  /// type `type_b` in the pair's *other* language, as "lang:name" strings.
  util::Result<std::vector<std::string>> TranslateAttribute(
      const std::string& lang_a, const std::string& lang_b,
      const std::string& type_b, const std::string& lang,
      const std::string& name) const;

  /// \brief All alignment clusters of `type_b`, one "l:a ~ l:b" line each.
  util::Result<std::vector<std::string>> ListAlignments(
      const std::string& lang_a, const std::string& lang_b,
      const std::string& type_b) const;

  /// \brief Translates `query_text` (written in `lang_a`) across the pair
  /// and evaluates it against the snapshot corpus in `lang_b`.
  util::Result<ServedQueryResult> EvaluateTranslatedQuery(
      const std::string& lang_a, const std::string& lang_b,
      const std::string& query_text) const;

  // ---- Line protocol (cached) --------------------------------------------

  /// \brief Handles one request line (see docs/SERVING.md) and returns the
  /// full response text ("ok <n>\n..." or "err <message>\n"). Successful
  /// responses are served from / inserted into the LRU cache.
  std::string Handle(const std::string& line);

  ServiceStats Stats() const;

  /// \brief Language pairs available in the snapshot.
  std::vector<store::LanguagePair> Pairs() const;

  const wiki::Corpus& corpus() const { return snapshot_.corpus; }

 private:
  struct PairServing {
    const match::PipelineResult* result = nullptr;
    std::map<std::string, const eval::MatchSet*> per_type;
    std::unique_ptr<query::QueryTranslator> translator;
  };

  MatchService(store::Snapshot snapshot, const ServiceOptions& options);

  /// The serving state of (lang_a, lang_b), or nullptr.
  const PairServing* FindPair(const std::string& lang_a,
                              const std::string& lang_b) const;

  /// Uncached dispatch; returns the rendered response.
  std::string Dispatch(const std::string& line, bool* cacheable);

  ServiceOptions options_;
  store::Snapshot snapshot_;
  std::map<store::LanguagePair, PairServing> pairs_;
  ShardedLruCache cache_;
  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
};

}  // namespace serve
}  // namespace wikimatch

#endif  // WIKIMATCH_SERVE_MATCH_SERVICE_H_
