// MatchService: the in-process serving layer. Loads a snapshot (the
// expensive offline matching already done by `wikimatch build-snapshot`)
// and answers three request types — attribute-translation lookup, per-type
// alignment listing, and translated c-query evaluation — from immutable
// in-memory state behind a sharded LRU result cache.
//
// Hot reload: the snapshot and every index derived from it live in an
// immutable Generation object held by shared_ptr. Readers pin the current
// generation for the duration of one request; Reload() builds the next
// generation entirely off the read path and then swaps the pointer, so
// in-flight requests finish against the generation they started on and the
// old one is freed when its last reader drops it (RCU by shared_ptr).
// Cache keys are tagged with the generation's load sequence number, which
// invalidates every cached response at swap time without touching the
// cache: stale entries simply stop being addressable and age out of the
// LRU.
//
// O(1) startup: Load() mmaps the snapshot (store/snapshot_reader.h) and
// defers decoding — only the tiny meta section is read eagerly, so the
// service constructs in constant time regardless of snapshot size and the
// meta verbs (help, health, version, generation) answer immediately. The
// first request that needs real data materializes the core (decode + index
// build) once, under its own mutex; a decode failure is sticky and every
// core-needing request reports it until a successful reload. Reload() is
// deliberately *eager* — it decodes before swapping, preserving the "on
// error the old generation keeps serving" contract. Snapshots without the
// mmap directory (older writers) fall back to the original eager parse
// path byte-identically. Each generation pins its MappedSnapshot, so
// replacing or unlinking the snapshot file never invalidates a mapping
// still being served from.
//
// Thread safety: a generation is read-only after construction (MatchSets
// are fully path-compressed at build so even their lazy union-find
// performs no writes), the generation pointer is swapped under a mutex,
// the cache is internally synchronized, and counters are atomic —
// Handle() and Reload() may be called from any number of threads
// concurrently.

#ifndef WIKIMATCH_SERVE_MATCH_SERVICE_H_
#define WIKIMATCH_SERVE_MATCH_SERVICE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "query/evaluator.h"
#include "query/translator.h"
#include "serve/lru_cache.h"
#include "store/snapshot.h"
#include "store/snapshot_reader.h"
#include "util/mutex.h"
#include "util/result.h"
#include "util/thread_annotations.h"

namespace wikimatch {
namespace serve {

/// \brief Serving configuration.
struct ServiceOptions {
  /// Total LRU result-cache entries (0 disables caching).
  size_t cache_capacity = 4096;
  /// Cache shards (concurrency width).
  size_t cache_shards = 8;
  /// Maximum answers per query request.
  size_t query_top_k = 20;
};

/// \brief Observability counters.
struct ServiceStats {
  uint64_t requests = 0;  ///< Handle() calls, including errors
  uint64_t errors = 0;    ///< requests answered with "err"
  uint64_t generation = 0;  ///< snapshot meta generation being served
  uint64_t loads = 0;       ///< generations installed (initial load = 1)
  int64_t loaded_unix = 0;  ///< wall-clock time the generation installed
  double uptime_s = 0.0;    ///< since service construction
  double generation_age_s = 0.0;  ///< since the current generation installed
  CacheStats cache;
};

/// \brief One answer of a translated query.
struct ServedAnswer {
  std::string title;
  double score = 0.0;
  std::vector<std::string> projections;
};

/// \brief Result of a translated c-query evaluation.
struct ServedQueryResult {
  std::string translated_query;
  size_t constraints_translated = 0;
  size_t constraints_relaxed = 0;
  std::vector<ServedAnswer> answers;
};

/// \brief Thread-safe snapshot-backed match server with hot reload.
class MatchService {
 public:
  /// \brief Opens the snapshot at `path` for serving. New-format
  /// snapshots are mmapped and decoded lazily (O(1) regardless of size);
  /// older formats are parsed eagerly as before. The path is remembered
  /// as the default `Reload()` source.
  static util::Result<std::unique_ptr<MatchService>> Load(
      const std::string& path, const ServiceOptions& options = {});

  /// \brief Builds a service from an in-memory snapshot (tests, bench).
  static std::unique_ptr<MatchService> Create(
      store::Snapshot snapshot, const ServiceOptions& options = {});

  /// \brief Builds serving indexes for the snapshot at `path` (or, with an
  /// empty path, the path of the last successful load) off the read path,
  /// then atomically swaps it in. On error the previous generation keeps
  /// serving untouched. Concurrent Reload() calls are serialized.
  util::Status Reload(const std::string& path = "");

  // ---- Typed API (uncached) ----------------------------------------------

  /// \brief Correspondents of attribute (`lang`, `name`) of the pair's
  /// type `type_b` in the pair's *other* language, as "lang:name" strings.
  util::Result<std::vector<std::string>> TranslateAttribute(
      const std::string& lang_a, const std::string& lang_b,
      const std::string& type_b, const std::string& lang,
      const std::string& name) const;

  /// \brief All alignment clusters of `type_b`, one "l:a ~ l:b" line each.
  util::Result<std::vector<std::string>> ListAlignments(
      const std::string& lang_a, const std::string& lang_b,
      const std::string& type_b) const;

  /// \brief Translates `query_text` (written in `lang_a`) across the pair
  /// and evaluates it against the snapshot corpus in `lang_b`.
  util::Result<ServedQueryResult> EvaluateTranslatedQuery(
      const std::string& lang_a, const std::string& lang_b,
      const std::string& query_text) const;

  // ---- Line protocol (cached) --------------------------------------------

  /// \brief Handles one request line (see docs/SERVING.md) and returns the
  /// full response text ("ok <n>\n..." or "err <message>\n"). Successful
  /// responses are served from / inserted into the LRU cache, keyed under
  /// the generation that produced them.
  std::string Handle(const std::string& line);

  ServiceStats Stats() const;

  /// \brief Language pairs available in the current generation.
  std::vector<store::LanguagePair> Pairs() const;

  /// \brief Articles in the current generation's corpus (0 while an
  /// mmap-loaded core is still deferred — see CoreLoaded()).
  size_t CorpusSize() const;

  /// \brief Snapshot meta generation currently being served.
  uint64_t Generation() const;

  /// \brief True once the decoded core (corpus, pairs, indexes) exists.
  /// False between an mmap Load() and the first core-needing request.
  bool CoreLoaded() const;

 private:
  using Clock = std::chrono::steady_clock;

  struct PairServing {
    const match::PipelineResult* result = nullptr;
    std::map<std::string, const eval::MatchSet*> per_type;
    std::unique_ptr<query::QueryTranslator> translator;
  };

  /// One immutable serving epoch: a snapshot plus every index derived
  /// from it. Never mutated after BuildGeneration returns.
  struct GenerationState {
    store::Snapshot snapshot;
    std::map<store::LanguagePair, PairServing> pairs;
    /// Pins the mmap this generation was decoded from (null for parsed or
    /// in-memory snapshots): the pages stay valid even if the snapshot
    /// file is replaced or unlinked, until the generation drains.
    std::shared_ptr<store::MappedSnapshot> mapped;
    uint64_t load_seq = 0;    ///< 1 for the initial load, +1 per reload
    int64_t loaded_unix = 0;  ///< wall clock at install
    Clock::time_point loaded_at;
    /// (pair_lang, type_b) -> row indices into snapshot.sync_report, built
    /// once per load so `sync` answers without scanning the report.
    std::map<std::pair<std::string, std::string>, std::vector<size_t>>
        sync_cells;
    std::map<std::pair<std::string, std::string>, std::vector<size_t>>
        sync_updates;

    const PairServing* FindPair(const std::string& lang_a,
                                const std::string& lang_b) const;
  };

  explicit MatchService(const ServiceOptions& options);

  static std::shared_ptr<const GenerationState> BuildGeneration(
      store::Snapshot snapshot, uint64_t load_seq,
      std::shared_ptr<store::MappedSnapshot> mapped);

  /// Pins the current generation: the decoded core when it exists, else
  /// the meta-only boot generation (shared_ptr copy under a short lock).
  std::shared_ptr<const GenerationState> Current() const;

  /// The decoded core, materializing it on first call in lazy (mmap)
  /// mode. A decode failure is sticky until a successful Reload().
  util::Result<std::shared_ptr<const GenerationState>> Core() const;

  /// Uncached dispatch against one pinned generation.
  std::string Dispatch(const GenerationState& gen, const std::string& line,
                       bool* cacheable);

  ServiceOptions options_;
  ShardedLruCache cache_;
  Clock::time_point started_;

  // Guards gen_/boot_gen_ (pointer copy + swap only). The pointed-to
  // GenerationState is immutable after BuildGeneration, so only the
  // pointers need a lock. gen_ is mutable because Core() materializes it
  // lazily from const readers.
  mutable util::Mutex gen_mu_;
  mutable std::shared_ptr<const GenerationState> gen_
      WIKIMATCH_GUARDED_BY(gen_mu_);
  /// Meta-only generation from an mmap Load(): snapshot.meta plus the
  /// pinned mapping, no decoded content. Null in eager modes.
  std::shared_ptr<const GenerationState> boot_gen_
      WIKIMATCH_GUARDED_BY(gen_mu_);

  // Serializes the one-time lazy core build; sticky decode error.
  mutable util::Mutex core_mu_;
  mutable util::Status core_error_ WIKIMATCH_GUARDED_BY(core_mu_) =
      util::Status::OK();

  util::Mutex reload_mu_;  // serializes writers; guards source_path_
  std::string source_path_ WIKIMATCH_GUARDED_BY(reload_mu_);

  std::atomic<uint64_t> requests_{0};
  std::atomic<uint64_t> errors_{0};
  std::atomic<uint64_t> loads_{0};
};

}  // namespace serve
}  // namespace wikimatch

#endif  // WIKIMATCH_SERVE_MATCH_SERVICE_H_
