// Versioned binary snapshot of a finished matching run: the finalized
// corpus, the translation dictionary, and one full PipelineResult per
// language pair. A snapshot is what `wikimatch build-snapshot` produces
// offline and what the serving subsystem (src/serve/) loads once to answer
// lookups and translated queries without re-running the matcher.
//
// File layout (all integers little-endian; see docs/SERVING.md):
//
//   header   magic u32 ("WMSN") | version u32 | section_count u32 |
//            reserved u32 (zero)
//   section  kind u32 | payload_size u64 | crc32 u32 | payload bytes
//
// Section kinds: 1 = corpus, 2 = dictionary, 3 = pipeline result (payload
// begins with lang_a, lang_b; repeats once per pair), 4 = meta (snapshot
// generation number plus the delta-manifest history appended by
// `wikimatch apply-delta`), 5 = sync report (the last `wikimatch sync`
// result, docs/SYNC.md), 6 = directory (offsets/sizes/CRCs of every
// content section, for the mmap reader), 7 = pad (zero bytes that 8-align
// the directory payload). Unknown kinds within a supported version are
// skipped, so sections can be added without a version bump — kinds 4-7
// were added that way and old readers ignore them. Readers verify the
// magic, the version, the section count, and every section's CRC-32, and
// fail with a descriptive util::Status on truncated, corrupt, or
// version-mismatched input — never undefined behavior.
//
// Mmap layout (additive; see src/store/snapshot_reader.h): after the last
// content section the writer appends a pad section (kind 7) sized so the
// directory payload starts 8-byte-aligned, the directory section (kind 6),
// and a fixed 16-byte footer *outside* the counted sections:
//
//   footer   directory_header_offset u64 | crc32(of those 8 bytes) u32 |
//            footer magic u32 ("WMSF")
//
// The streaming reader loops exactly section_count sections and ignores
// trailing bytes, so the footer is invisible to it; pad and directory ride
// the unknown-kind skip path of old readers. MappedSnapshot finds the
// directory through the footer in O(1) and validates content-section CRCs
// lazily, on first touch. Files without a valid footer (older writers, or
// legacy_layout below) simply fall back to the parse path.

#ifndef WIKIMATCH_STORE_SNAPSHOT_H_
#define WIKIMATCH_STORE_SNAPSHOT_H_

#include <cstdint>
#include <cstdio>
#include <map>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "match/dictionary.h"
#include "match/pipeline.h"
#include "sync/sync_engine.h"
#include "util/result.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace store {

inline constexpr uint32_t kSnapshotMagic = 0x4E534D57u;  // "WMSN" on disk
inline constexpr uint32_t kSnapshotVersion = 1;
inline constexpr uint32_t kSnapshotFooterMagic = 0x46534D57u;  // "WMSF"
inline constexpr size_t kSnapshotFooterSize = 16;

/// \brief Section kinds of the snapshot container.
enum class SectionKind : uint32_t {
  kCorpus = 1,
  kDictionary = 2,
  kPipeline = 3,
  kMeta = 4,
  kSyncReport = 5,
  kDirectory = 6,
  kPad = 7,
};

/// \brief A language pair, source first ("pt", "en").
using LanguagePair = std::pair<std::string, std::string>;

/// \brief One applied delta batch, as recorded in the snapshot manifest.
struct DeltaRecord {
  uint64_t generation = 0;  // generation the batch produced
  uint64_t articles_added = 0;
  uint64_t articles_updated = 0;
  uint64_t articles_removed = 0;
  uint64_t units_reused = 0;
  uint64_t units_recomputed = 0;
};

/// \brief The result-affecting subset of match::PipelineOptions, persisted
/// in the snapshot meta section so `apply-delta` can verify it reuses unit
/// results under the exact options that produced them (docs/INGEST.md).
///
/// Execution-only switches are deliberately excluded: num_threads (both
/// levels) and use_indexed_join change wall clock, never bytes — the
/// equivalence suites assert that — so they are free to differ between the
/// build and the apply.
struct OptionsFingerprint {
  // MatcherConfig thresholds.
  double t_sim = 0.0;
  double t_lsi = 0.0;
  double t_inductive = 0.0;
  double t_revise_min_sim = 0.0;
  double min_link_support = 0.0;
  uint64_t lsi_rank = 0;
  double lsi_co_occur_tolerance = 0.0;
  // MatcherConfig ablation switches.
  bool use_vsim = true;
  bool use_lsim = true;
  bool use_lsi = true;
  bool use_integrate_constraint = true;
  bool use_revise_uncertain = true;
  bool use_inductive_grouping = true;
  bool random_order = false;
  bool single_step = false;
  uint64_t random_seed = 0;
  bool keep_all_pairs = false;
  /// Exact (bit-identical-to-Cosine) similarity join weights vs the opt-in
  /// fp32-quantized mode — result-affecting, unlike use_indexed_join.
  /// Trailing field: files from older writers read back as true.
  bool use_exact_cosine = true;
  // SchemaBuilderOptions.
  bool translate_values = true;
  uint64_t schema_min_occurrences = 0;
  uint64_t schema_max_sample_infoboxes = 0;
  // Pipeline-level type-matching thresholds.
  uint64_t type_min_votes = 0;
  double type_min_confidence = 0.0;

  /// \brief Extracts the fingerprint of a full options struct.
  static OptionsFingerprint From(const match::PipelineOptions& options);

  bool operator==(const OptionsFingerprint& other) const = default;

  /// \brief Compact key=value rendering for mismatch diagnostics.
  std::string ToString() const;
};

/// \brief Generation number + delta manifest + options fingerprint
/// (section kind 4).
///
/// A freshly built snapshot is generation 0 with an empty history; each
/// `wikimatch apply-delta` bumps the generation and appends a DeltaRecord.
/// The section is written only when non-default, so generation-0 snapshots
/// without a recorded fingerprint are byte-identical to pre-meta ones and
/// old files read back as generation 0. The fingerprint rides as trailing
/// fields of the same payload — old readers ignore trailing bytes and old
/// files read back with no fingerprint — so neither addition bumped the
/// format version.
struct SnapshotMeta {
  uint64_t generation = 0;
  std::vector<DeltaRecord> history;
  /// Options the pipeline results were built with; absent in snapshots
  /// from writers that predate the field (then apply-delta trusts the
  /// caller, the pre-fingerprint behavior).
  std::optional<OptionsFingerprint> options;

  bool IsDefault() const {
    return generation == 0 && history.empty() && !options.has_value();
  }
};

/// \brief Everything a snapshot holds, in memory.
struct Snapshot {
  wiki::Corpus corpus;
  match::TranslationDictionary dictionary;
  std::map<LanguagePair, match::PipelineResult> pipelines;
  SnapshotMeta meta;
  /// Last `wikimatch sync` result (section kind 5). Written only when
  /// non-empty, like the meta section, so snapshots that never ran sync
  /// keep their pre-sync bytes; `serve` answers sync verbs from this
  /// without recomputation.
  sync::SyncReport sync_report;
};

/// \brief Streaming writer: one Write* call per section, then Finish().
///
/// Sections are checksummed and flushed as they are written; the header's
/// section count is patched in by Finish(), so a file without a successful
/// Finish() (crash mid-build) is rejected by the reader.
class SnapshotWriter {
 public:
  /// \brief Opens `path` for writing and emits a provisional header.
  /// `legacy_layout` suppresses the pad/directory sections and the footer,
  /// reproducing pre-directory writers byte for byte (compatibility tests;
  /// the streaming reader accepts both layouts identically).
  static util::Result<SnapshotWriter> Open(const std::string& path,
                                           bool legacy_layout = false);

  SnapshotWriter(SnapshotWriter&& other) noexcept;
  SnapshotWriter& operator=(SnapshotWriter&& other) noexcept;
  SnapshotWriter(const SnapshotWriter&) = delete;
  SnapshotWriter& operator=(const SnapshotWriter&) = delete;
  ~SnapshotWriter();

  util::Status WriteCorpus(const wiki::Corpus& corpus);
  util::Status WriteDictionary(const match::TranslationDictionary& dict);
  util::Status WritePipeline(const std::string& lang_a,
                             const std::string& lang_b,
                             const match::PipelineResult& result);
  util::Status WriteMeta(const SnapshotMeta& meta);
  util::Status WriteSyncReport(const sync::SyncReport& report);

  /// \brief Appends the pad + directory sections and the footer (unless
  /// legacy_layout), patches the section count into the header, and closes
  /// the file.
  util::Status Finish();

 private:
  /// Directory bookkeeping for one written content section.
  struct SectionInfo {
    uint32_t kind = 0;
    uint64_t header_offset = 0;
    uint64_t payload_size = 0;
    uint32_t crc = 0;
  };

  explicit SnapshotWriter(std::FILE* file, bool legacy_layout)
      : file_(file), legacy_layout_(legacy_layout) {}

  util::Status WriteSection(SectionKind kind, const std::string& payload);

  std::FILE* file_ = nullptr;
  bool legacy_layout_ = false;
  uint32_t section_count_ = 0;
  std::vector<SectionInfo> sections_;
};

/// \brief Writes a complete in-memory snapshot to `path`. `legacy_layout`
/// reproduces the pre-directory file format (see SnapshotWriter::Open).
util::Status WriteSnapshotFile(const Snapshot& snapshot,
                               const std::string& path,
                               bool legacy_layout = false);

/// \brief Decodes one content section's payload into `snapshot` — the
/// shared body of the streaming reader and MappedSnapshot::Decode.
/// Unknown kinds (including pad and directory) are ignored. The payload
/// must already be CRC-verified.
util::Status DecodeSnapshotSection(SectionKind kind,
                                   std::string_view payload,
                                   Snapshot* snapshot);

/// \brief Reads and validates a snapshot file.
///
/// Errors: IoError (unreadable file), ParseError (bad magic, CRC mismatch,
/// malformed section payload), OutOfRange (truncated file or section),
/// InvalidArgument (unsupported version).
util::Result<Snapshot> ReadSnapshotFile(const std::string& path);

}  // namespace store
}  // namespace wikimatch

#endif  // WIKIMATCH_STORE_SNAPSHOT_H_
