// Memory-mapped snapshot access for O(1) serve startup.
//
// MappedSnapshot::Map mmaps a snapshot file and validates only the fixed
// header and the trailing footer + section directory (a few hundred bytes
// regardless of snapshot size) — it never reads the content sections, so
// mapping a multi-gigabyte snapshot costs the same as mapping a tiny one.
// Content-section CRCs are validated *lazily*: the first Payload() touch of
// a section checks its CRC-32 and caches the verdict (sticky both ways), so
// corruption is still always detected before any decoded byte is trusted,
// just not before the process starts answering health checks.
//
// Files without a valid footer — written by pre-directory builds or with
// SnapshotWriter's legacy_layout — make Map() return NotFound, the caller's
// cue to fall back to the streaming parse path (ReadSnapshotFile), which
// reads both layouts identically. Truncated or corrupt *new* files also
// fail toward that fallback: the parse path owns the descriptive errors.
//
// Lifetime: the mapping holds the pages, not the directory entry — a
// snapshot file may be replaced or unlinked while mapped and every
// outstanding string_view stays valid until the MappedSnapshot is
// destroyed. The serving layer pins one shared_ptr<MappedSnapshot> per
// generation for exactly this reason (docs/SERVING.md).

#ifndef WIKIMATCH_STORE_SNAPSHOT_READER_H_
#define WIKIMATCH_STORE_SNAPSHOT_READER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "store/snapshot.h"
#include "util/result.h"

namespace wikimatch {
namespace store {

/// \brief A snapshot file mapped read-only into the address space.
class MappedSnapshot {
 public:
  /// \brief Maps `path` and validates header, footer, and directory.
  /// NotFound: no usable directory footer (legacy layout / older writer /
  /// truncation) — fall back to ReadSnapshotFile. IoError: the file cannot
  /// be opened or mapped at all.
  static util::Result<std::shared_ptr<MappedSnapshot>> Map(
      const std::string& path);

  ~MappedSnapshot();

  MappedSnapshot(const MappedSnapshot&) = delete;
  MappedSnapshot& operator=(const MappedSnapshot&) = delete;

  /// \brief Content sections listed in the directory (pad and the
  /// directory itself are not included).
  size_t num_sections() const { return entries_.size(); }

  SectionKind section_kind(size_t idx) const {
    return static_cast<SectionKind>(entries_[idx].kind);
  }

  /// \brief The section's payload bytes, in place in the mapping. The
  /// first touch of a section CRC-validates it; the verdict is cached and
  /// sticky (a corrupt section stays an error on every later touch).
  /// Thread-safe; concurrent first touches may both compute the CRC.
  util::Result<std::string_view> Payload(size_t idx) const;

  /// \brief Payload of the first section of `kind`; NotFound when the
  /// snapshot has no such section.
  util::Result<std::string_view> PayloadOfKind(SectionKind kind) const;

  /// \brief Decodes every content section into an in-memory Snapshot —
  /// the mmap-backed equivalent of ReadSnapshotFile, validating each
  /// section's CRC as it is touched.
  util::Result<Snapshot> Decode() const;

  const std::string& path() const { return path_; }
  uint64_t file_size() const { return size_; }

 private:
  struct Entry {
    uint32_t kind = 0;
    uint64_t payload_offset = 0;
    uint64_t payload_size = 0;
    uint32_t crc = 0;
  };

  MappedSnapshot() = default;

  std::string path_;
  const unsigned char* base_ = nullptr;
  uint64_t size_ = 0;
  std::vector<Entry> entries_;
  // Lazy per-section CRC state: 0 = unchecked, 1 = verified, 2 = corrupt.
  // unique_ptr<atomic[]> because vector<atomic> is not movable.
  std::unique_ptr<std::atomic<uint8_t>[]> crc_state_;
};

}  // namespace store
}  // namespace wikimatch

#endif  // WIKIMATCH_STORE_SNAPSHOT_READER_H_
