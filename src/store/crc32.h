// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-section
// checksum of the snapshot format. Table-driven, no dependencies.

#ifndef WIKIMATCH_STORE_CRC32_H_
#define WIKIMATCH_STORE_CRC32_H_

#include <cstdint>
#include <string_view>

namespace wikimatch {
namespace store {

/// \brief CRC-32 of `data`, optionally continuing from a previous value
/// (pass the prior return value to checksum data in chunks).
uint32_t Crc32(std::string_view data, uint32_t seed = 0);

}  // namespace store
}  // namespace wikimatch

#endif  // WIKIMATCH_STORE_CRC32_H_
