#include "store/snapshot_reader.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstring>

#include "store/crc32.h"
#include "util/binary_io.h"

namespace wikimatch {
namespace store {
namespace {

constexpr size_t kHeaderSize = 16;
constexpr size_t kSectionHeaderSize = 16;
constexpr size_t kDirectoryEntrySize = 32;

// Every reason Map() cannot establish the directory funnels into NotFound:
// the caller's contract is "NotFound → use the streaming parse path",
// which both reads legacy layouts and owns the descriptive errors for
// genuinely broken files.
util::Status NoFooter(const std::string& path, const std::string& why) {
  return util::Status::NotFound("snapshot " + path +
                                " has no mapped-directory footer (" + why +
                                "); use the streaming reader");
}

}  // namespace

util::Result<std::shared_ptr<MappedSnapshot>> MappedSnapshot::Map(
    const std::string& path) {
  int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    return util::Status::IoError("cannot open snapshot " + path);
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    ::close(fd);
    return util::Status::IoError("cannot stat snapshot " + path);
  }
  const uint64_t size = static_cast<uint64_t>(st.st_size);
  if (size < kHeaderSize + kSnapshotFooterSize) {
    ::close(fd);
    return NoFooter(path, "file too small");
  }
  void* mapping = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
  ::close(fd);  // the mapping keeps the pages; the fd is not needed
  if (mapping == MAP_FAILED) {
    return util::Status::IoError("cannot mmap snapshot " + path);
  }
  auto snap = std::shared_ptr<MappedSnapshot>(new MappedSnapshot());
  snap->path_ = path;
  snap->base_ = static_cast<const unsigned char*>(mapping);
  snap->size_ = size;

  const std::string_view bytes(reinterpret_cast<const char*>(snap->base_),
                               size);

  // Fixed header: magic and version must hold for either reader.
  util::BinaryReader hr(bytes.substr(0, kHeaderSize));
  uint32_t magic = hr.ReadU32().ValueOrDie();
  uint32_t version = hr.ReadU32().ValueOrDie();
  uint32_t section_count = hr.ReadU32().ValueOrDie();
  if (magic != kSnapshotMagic) {
    return util::Status::ParseError(path +
                                    " is not a wikimatch snapshot (bad "
                                    "magic)");
  }
  if (version != kSnapshotVersion) {
    return util::Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) + " in " +
        path + " (this build reads version " +
        std::to_string(kSnapshotVersion) + ")");
  }
  if (section_count == 0) {
    return util::Status::ParseError("snapshot " + path +
                                    " is incomplete (zero sections; "
                                    "build-snapshot did not finish)");
  }

  // Footer: last 16 bytes. Anything off → legacy / pre-directory file.
  util::BinaryReader fr(bytes.substr(size - kSnapshotFooterSize));
  uint64_t dir_offset = fr.ReadU64().ValueOrDie();
  uint32_t offset_crc = fr.ReadU32().ValueOrDie();
  uint32_t footer_magic = fr.ReadU32().ValueOrDie();
  if (footer_magic != kSnapshotFooterMagic) {
    return NoFooter(path, "footer magic missing");
  }
  if (Crc32(bytes.substr(size - kSnapshotFooterSize, 8)) != offset_crc) {
    return NoFooter(path, "footer checksum mismatch");
  }
  if (dir_offset < kHeaderSize ||
      dir_offset + kSectionHeaderSize > size - kSnapshotFooterSize) {
    return NoFooter(path, "directory offset out of range");
  }

  // Directory section header + payload. The directory is tiny, so its CRC
  // is the one checksum Map() verifies eagerly — every entry the lazy
  // content validation later trusts must itself be trustworthy.
  util::BinaryReader dr(bytes.substr(dir_offset, kSectionHeaderSize));
  uint32_t dir_kind = dr.ReadU32().ValueOrDie();
  uint64_t dir_size = dr.ReadU64().ValueOrDie();
  uint32_t dir_crc = dr.ReadU32().ValueOrDie();
  if (dir_kind != static_cast<uint32_t>(SectionKind::kDirectory)) {
    return NoFooter(path, "footer does not point at a directory section");
  }
  const uint64_t dir_payload = dir_offset + kSectionHeaderSize;
  if (dir_size > size - kSnapshotFooterSize - dir_payload) {
    return NoFooter(path, "directory section truncated");
  }
  std::string_view dir_bytes = bytes.substr(dir_payload, dir_size);
  if (Crc32(dir_bytes) != dir_crc) {
    return NoFooter(path, "directory checksum mismatch");
  }
  util::BinaryReader er(dir_bytes);
  auto entry_count = er.ReadU64();
  if (!entry_count.ok() ||
      entry_count.ValueOrDie() * kDirectoryEntrySize + 8 != dir_size) {
    return NoFooter(path, "directory entry count inconsistent");
  }
  snap->entries_.reserve(entry_count.ValueOrDie());
  for (uint64_t i = 0; i < entry_count.ValueOrDie(); ++i) {
    Entry e;
    e.kind = er.ReadU32().ValueOrDie();
    er.ReadU32().ValueOrDie();  // reserved
    uint64_t header_offset = er.ReadU64().ValueOrDie();
    e.payload_size = er.ReadU64().ValueOrDie();
    e.crc = er.ReadU32().ValueOrDie();
    er.ReadU32().ValueOrDie();  // reserved
    e.payload_offset = header_offset + kSectionHeaderSize;
    if (header_offset < kHeaderSize || e.payload_offset > size ||
        e.payload_size > size - e.payload_offset) {
      return NoFooter(path, "directory entry out of range");
    }
    snap->entries_.push_back(e);
  }
  snap->crc_state_ =
      std::make_unique<std::atomic<uint8_t>[]>(snap->entries_.size());
  for (size_t i = 0; i < snap->entries_.size(); ++i) {
    snap->crc_state_[i].store(0, std::memory_order_relaxed);
  }
  return snap;
}

MappedSnapshot::~MappedSnapshot() {
  if (base_ != nullptr) {
    ::munmap(const_cast<unsigned char*>(base_), size_);
  }
}

util::Result<std::string_view> MappedSnapshot::Payload(size_t idx) const {
  if (idx >= entries_.size()) {
    return util::Status::OutOfRange("snapshot section index " +
                                    std::to_string(idx) + " out of range");
  }
  const Entry& e = entries_[idx];
  std::string_view payload(
      reinterpret_cast<const char*>(base_) + e.payload_offset,
      e.payload_size);
  uint8_t state = crc_state_[idx].load(std::memory_order_acquire);
  if (state == 0) {
    // First touch: validate. Concurrent first touches both compute the
    // same CRC over immutable bytes and store the same verdict — the race
    // is benign and the result sticky.
    state = Crc32(payload) == e.crc ? 1 : 2;
    crc_state_[idx].store(state, std::memory_order_release);
  }
  if (state != 1) {
    return util::Status::ParseError(
        "corrupt snapshot " + path_ + ": CRC mismatch in section " +
        std::to_string(idx) + " (kind " + std::to_string(e.kind) + ")");
  }
  return payload;
}

util::Result<std::string_view> MappedSnapshot::PayloadOfKind(
    SectionKind kind) const {
  for (size_t i = 0; i < entries_.size(); ++i) {
    if (entries_[i].kind == static_cast<uint32_t>(kind)) return Payload(i);
  }
  return util::Status::NotFound("snapshot " + path_ + " has no section of "
                                "kind " +
                                std::to_string(static_cast<uint32_t>(kind)));
}

util::Result<Snapshot> MappedSnapshot::Decode() const {
  Snapshot snapshot;
  bool have_corpus = false;
  bool have_dictionary = false;
  for (size_t i = 0; i < entries_.size(); ++i) {
    auto payload = Payload(i);
    if (!payload.ok()) return payload.status();
    SectionKind kind = section_kind(i);
    util::Status st =
        DecodeSnapshotSection(kind, payload.ValueOrDie(), &snapshot);
    if (!st.ok()) return st;
    if (kind == SectionKind::kCorpus) have_corpus = true;
    if (kind == SectionKind::kDictionary) have_dictionary = true;
  }
  if (!have_corpus || !have_dictionary) {
    return util::Status::ParseError("snapshot " + path_ +
                                    " lacks a corpus or dictionary section");
  }
  return snapshot;
}

}  // namespace store
}  // namespace wikimatch
