#include "store/snapshot.h"

#include <cstring>

#include "match/serialize.h"
#include "store/crc32.h"
#include "util/binary_io.h"
#include "wiki/serialize.h"

namespace wikimatch {
namespace store {
namespace {

constexpr size_t kHeaderSize = 16;           // magic, version, count, reserved
constexpr size_t kSectionHeaderSize = 16;    // kind u32, size u64, crc u32

std::string EncodeHeader(uint32_t section_count) {
  util::BinaryWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutU32(kSnapshotVersion);
  w.PutU32(section_count);
  w.PutU32(0);  // reserved
  return w.TakeBuffer();
}

util::Status WriteAll(std::FILE* file, const std::string& bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    return util::Status::IoError("short write to snapshot file");
  }
  return util::Status::OK();
}

}  // namespace

util::Result<SnapshotWriter> SnapshotWriter::Open(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  SnapshotWriter writer(file);
  // Provisional header with section_count = 0; Finish() patches it. A
  // reader that sees zero sections treats the file as incomplete.
  auto status = WriteAll(file, EncodeHeader(0));
  if (!status.ok()) return status;
  return writer;
}

SnapshotWriter::SnapshotWriter(SnapshotWriter&& other) noexcept
    : file_(other.file_), section_count_(other.section_count_) {
  other.file_ = nullptr;
}

SnapshotWriter& SnapshotWriter::operator=(SnapshotWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    section_count_ = other.section_count_;
    other.file_ = nullptr;
  }
  return *this;
}

SnapshotWriter::~SnapshotWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

util::Status SnapshotWriter::WriteSection(SectionKind kind,
                                          const std::string& payload) {
  if (file_ == nullptr) {
    return util::Status::Internal("snapshot writer already finished");
  }
  util::BinaryWriter header;
  header.PutU32(static_cast<uint32_t>(kind));
  header.PutU64(payload.size());
  header.PutU32(Crc32(payload));
  WIKIMATCH_RETURN_NOT_OK(WriteAll(file_, header.buffer()));
  WIKIMATCH_RETURN_NOT_OK(WriteAll(file_, payload));
  ++section_count_;
  return util::Status::OK();
}

util::Status SnapshotWriter::WriteCorpus(const wiki::Corpus& corpus) {
  util::BinaryWriter w;
  wiki::EncodeCorpus(corpus, &w);
  return WriteSection(SectionKind::kCorpus, w.buffer());
}

util::Status SnapshotWriter::WriteDictionary(
    const match::TranslationDictionary& dict) {
  util::BinaryWriter w;
  match::EncodeDictionary(dict, &w);
  return WriteSection(SectionKind::kDictionary, w.buffer());
}

util::Status SnapshotWriter::WritePipeline(
    const std::string& lang_a, const std::string& lang_b,
    const match::PipelineResult& result) {
  util::BinaryWriter w;
  w.PutString(lang_a);
  w.PutString(lang_b);
  match::EncodePipelineResult(result, &w);
  return WriteSection(SectionKind::kPipeline, w.buffer());
}

util::Status SnapshotWriter::WriteMeta(const SnapshotMeta& meta) {
  util::BinaryWriter w;
  w.PutU64(meta.generation);
  w.PutU64(meta.history.size());
  for (const auto& rec : meta.history) {
    w.PutU64(rec.generation);
    w.PutU64(rec.articles_added);
    w.PutU64(rec.articles_updated);
    w.PutU64(rec.articles_removed);
    w.PutU64(rec.units_reused);
    w.PutU64(rec.units_recomputed);
  }
  return WriteSection(SectionKind::kMeta, w.buffer());
}

util::Status SnapshotWriter::Finish() {
  if (file_ == nullptr) {
    return util::Status::Internal("snapshot writer already finished");
  }
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return util::Status::IoError("cannot seek to snapshot header");
  }
  util::Status status = WriteAll(file_, EncodeHeader(section_count_));
  int close_rc = std::fclose(file_);
  file_ = nullptr;
  if (!status.ok()) return status;
  if (close_rc != 0) {
    return util::Status::IoError("error closing snapshot file");
  }
  return util::Status::OK();
}

util::Status WriteSnapshotFile(const Snapshot& snapshot,
                               const std::string& path) {
  auto writer = SnapshotWriter::Open(path);
  if (!writer.ok()) return writer.status();
  WIKIMATCH_RETURN_NOT_OK(writer->WriteCorpus(snapshot.corpus));
  WIKIMATCH_RETURN_NOT_OK(writer->WriteDictionary(snapshot.dictionary));
  for (const auto& [pair, result] : snapshot.pipelines) {
    WIKIMATCH_RETURN_NOT_OK(
        writer->WritePipeline(pair.first, pair.second, result));
  }
  // Generation-0 snapshots with no history omit the meta section so their
  // bytes match pre-meta writers (and old readers never see kind 4 at all
  // unless a delta was actually applied).
  if (!snapshot.meta.IsDefault()) {
    WIKIMATCH_RETURN_NOT_OK(writer->WriteMeta(snapshot.meta));
  }
  return writer->Finish();
}

util::Result<Snapshot> ReadSnapshotFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::Status::IoError("cannot open snapshot " + path);
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  // File size, for validating section length fields before allocating.
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return util::Status::IoError("cannot seek in snapshot " + path);
  }
  long file_size = std::ftell(file);
  if (file_size < 0) {
    return util::Status::IoError("cannot read size of snapshot " + path);
  }
  std::rewind(file);

  std::string header(kHeaderSize, '\0');
  if (std::fread(header.data(), 1, kHeaderSize, file) != kHeaderSize) {
    return util::Status::OutOfRange("truncated snapshot " + path +
                                    ": missing header");
  }
  util::BinaryReader hr(header);
  uint32_t magic = hr.ReadU32().ValueOrDie();
  uint32_t version = hr.ReadU32().ValueOrDie();
  uint32_t section_count = hr.ReadU32().ValueOrDie();
  if (magic != kSnapshotMagic) {
    return util::Status::ParseError(path + " is not a wikimatch snapshot "
                                    "(bad magic)");
  }
  if (version != kSnapshotVersion) {
    return util::Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " in " + path + " (this build reads version " +
        std::to_string(kSnapshotVersion) + ")");
  }
  if (section_count == 0) {
    return util::Status::ParseError("snapshot " + path +
                                    " is incomplete (zero sections; "
                                    "build-snapshot did not finish)");
  }

  Snapshot snapshot;
  bool have_corpus = false;
  bool have_dictionary = false;
  size_t bytes_left = static_cast<size_t>(file_size) - kHeaderSize;
  for (uint32_t s = 0; s < section_count; ++s) {
    std::string section_header(kSectionHeaderSize, '\0');
    if (bytes_left < kSectionHeaderSize ||
        std::fread(section_header.data(), 1, kSectionHeaderSize, file) !=
            kSectionHeaderSize) {
      return util::Status::OutOfRange(
          "truncated snapshot " + path + ": section " + std::to_string(s) +
          " header missing");
    }
    bytes_left -= kSectionHeaderSize;
    util::BinaryReader sr(section_header);
    uint32_t kind = sr.ReadU32().ValueOrDie();
    uint64_t payload_size = sr.ReadU64().ValueOrDie();
    uint32_t expected_crc = sr.ReadU32().ValueOrDie();
    if (payload_size > bytes_left) {
      return util::Status::OutOfRange(
          "truncated snapshot " + path + ": section " + std::to_string(s) +
          " claims " + std::to_string(payload_size) + " bytes but only " +
          std::to_string(bytes_left) + " remain");
    }
    std::string payload(payload_size, '\0');
    if (payload_size > 0 &&
        std::fread(payload.data(), 1, payload_size, file) != payload_size) {
      return util::Status::OutOfRange("truncated snapshot " + path +
                                      ": section " + std::to_string(s) +
                                      " payload short");
    }
    bytes_left -= payload_size;
    uint32_t actual_crc = Crc32(payload);
    if (actual_crc != expected_crc) {
      return util::Status::ParseError(
          "corrupt snapshot " + path + ": CRC mismatch in section " +
          std::to_string(s) + " (kind " + std::to_string(kind) + ")");
    }

    util::BinaryReader pr(payload);
    switch (static_cast<SectionKind>(kind)) {
      case SectionKind::kCorpus: {
        auto corpus = wiki::DecodeCorpus(&pr);
        if (!corpus.ok()) {
          return corpus.status().WithContext("snapshot corpus section");
        }
        snapshot.corpus = std::move(corpus).ValueOrDie();
        have_corpus = true;
        break;
      }
      case SectionKind::kDictionary: {
        auto dict = match::DecodeDictionary(&pr);
        if (!dict.ok()) {
          return dict.status().WithContext("snapshot dictionary section");
        }
        snapshot.dictionary = std::move(dict).ValueOrDie();
        have_dictionary = true;
        break;
      }
      case SectionKind::kPipeline: {
        auto lang_a = pr.ReadString();
        if (!lang_a.ok()) return lang_a.status();
        auto lang_b = pr.ReadString();
        if (!lang_b.ok()) return lang_b.status();
        auto result = match::DecodePipelineResult(&pr);
        if (!result.ok()) {
          return result.status().WithContext("snapshot pipeline section " +
                                             *lang_a + ":" + *lang_b);
        }
        snapshot.pipelines.emplace(
            LanguagePair(std::move(lang_a).ValueOrDie(),
                         std::move(lang_b).ValueOrDie()),
            std::move(result).ValueOrDie());
        break;
      }
      case SectionKind::kMeta: {
        SnapshotMeta meta;
        auto gen = pr.ReadU64();
        if (!gen.ok()) {
          return gen.status().WithContext("snapshot meta section");
        }
        meta.generation = gen.ValueOrDie();
        auto count = pr.ReadU64();
        if (!count.ok()) {
          return count.status().WithContext("snapshot meta section");
        }
        for (uint64_t i = 0; i < count.ValueOrDie(); ++i) {
          DeltaRecord rec;
          uint64_t* fields[] = {&rec.generation,     &rec.articles_added,
                                &rec.articles_updated, &rec.articles_removed,
                                &rec.units_reused,   &rec.units_recomputed};
          for (uint64_t* field : fields) {
            auto v = pr.ReadU64();
            if (!v.ok()) {
              return v.status().WithContext("snapshot meta section");
            }
            *field = v.ValueOrDie();
          }
          meta.history.push_back(rec);
        }
        // Trailing bytes (fields appended by a newer writer) are ignored.
        snapshot.meta = std::move(meta);
        break;
      }
      default:
        // Unknown kind within a supported version: additive section from a
        // newer writer — skip it.
        break;
    }
  }
  if (!have_corpus || !have_dictionary) {
    return util::Status::ParseError("snapshot " + path +
                                    " lacks a corpus or dictionary section");
  }
  return snapshot;
}

}  // namespace store
}  // namespace wikimatch
