#include "store/snapshot.h"

#include <cstring>
#include <sstream>

#include "match/serialize.h"
#include "store/crc32.h"
#include "util/binary_io.h"
#include "wiki/serialize.h"

namespace wikimatch {
namespace store {
namespace {

constexpr size_t kHeaderSize = 16;           // magic, version, count, reserved
constexpr size_t kSectionHeaderSize = 16;    // kind u32, size u64, crc u32

std::string EncodeHeader(uint32_t section_count) {
  util::BinaryWriter w;
  w.PutU32(kSnapshotMagic);
  w.PutU32(kSnapshotVersion);
  w.PutU32(section_count);
  w.PutU32(0);  // reserved
  return w.TakeBuffer();
}

util::Status WriteAll(std::FILE* file, const std::string& bytes) {
  if (std::fwrite(bytes.data(), 1, bytes.size(), file) != bytes.size()) {
    return util::Status::IoError("short write to snapshot file");
  }
  return util::Status::OK();
}

}  // namespace

OptionsFingerprint OptionsFingerprint::From(
    const match::PipelineOptions& options) {
  OptionsFingerprint fp;
  const match::MatcherConfig& m = options.matcher;
  fp.t_sim = m.t_sim;
  fp.t_lsi = m.t_lsi;
  fp.t_inductive = m.t_inductive;
  fp.t_revise_min_sim = m.t_revise_min_sim;
  fp.min_link_support = m.min_link_support;
  fp.lsi_rank = m.lsi.rank;
  fp.lsi_co_occur_tolerance = m.lsi.co_occur_tolerance;
  fp.use_vsim = m.use_vsim;
  fp.use_lsim = m.use_lsim;
  fp.use_lsi = m.use_lsi;
  fp.use_integrate_constraint = m.use_integrate_constraint;
  fp.use_revise_uncertain = m.use_revise_uncertain;
  fp.use_inductive_grouping = m.use_inductive_grouping;
  fp.random_order = m.random_order;
  fp.single_step = m.single_step;
  fp.random_seed = m.random_seed;
  fp.keep_all_pairs = m.keep_all_pairs;
  fp.use_exact_cosine = m.use_exact_cosine;
  fp.translate_values = options.schema.translate_values;
  fp.schema_min_occurrences = options.schema.min_occurrences;
  fp.schema_max_sample_infoboxes = options.schema.max_sample_infoboxes;
  fp.type_min_votes = options.type_min_votes;
  fp.type_min_confidence = options.type_min_confidence;
  return fp;
}

std::string OptionsFingerprint::ToString() const {
  std::ostringstream os;
  os << "t_sim=" << t_sim << " t_lsi=" << t_lsi
     << " t_inductive=" << t_inductive
     << " t_revise_min_sim=" << t_revise_min_sim
     << " min_link_support=" << min_link_support << " lsi_rank=" << lsi_rank
     << " lsi_co_occur_tolerance=" << lsi_co_occur_tolerance
     << " use_vsim=" << use_vsim << " use_lsim=" << use_lsim
     << " use_lsi=" << use_lsi
     << " use_integrate_constraint=" << use_integrate_constraint
     << " use_revise_uncertain=" << use_revise_uncertain
     << " use_inductive_grouping=" << use_inductive_grouping
     << " random_order=" << random_order << " single_step=" << single_step
     << " random_seed=" << random_seed
     << " keep_all_pairs=" << keep_all_pairs
     << " use_exact_cosine=" << use_exact_cosine
     << " translate_values=" << translate_values
     << " schema_min_occurrences=" << schema_min_occurrences
     << " schema_max_sample_infoboxes=" << schema_max_sample_infoboxes
     << " type_min_votes=" << type_min_votes
     << " type_min_confidence=" << type_min_confidence;
  return os.str();
}

util::Result<SnapshotWriter> SnapshotWriter::Open(const std::string& path,
                                                  bool legacy_layout) {
  std::FILE* file = std::fopen(path.c_str(), "wb");
  if (file == nullptr) {
    return util::Status::IoError("cannot open " + path + " for writing");
  }
  SnapshotWriter writer(file, legacy_layout);
  // Provisional header with section_count = 0; Finish() patches it. A
  // reader that sees zero sections treats the file as incomplete.
  auto status = WriteAll(file, EncodeHeader(0));
  if (!status.ok()) return status;
  return writer;
}

SnapshotWriter::SnapshotWriter(SnapshotWriter&& other) noexcept
    : file_(other.file_),
      legacy_layout_(other.legacy_layout_),
      section_count_(other.section_count_),
      sections_(std::move(other.sections_)) {
  other.file_ = nullptr;
}

SnapshotWriter& SnapshotWriter::operator=(SnapshotWriter&& other) noexcept {
  if (this != &other) {
    if (file_ != nullptr) std::fclose(file_);
    file_ = other.file_;
    legacy_layout_ = other.legacy_layout_;
    section_count_ = other.section_count_;
    sections_ = std::move(other.sections_);
    other.file_ = nullptr;
  }
  return *this;
}

SnapshotWriter::~SnapshotWriter() {
  if (file_ != nullptr) std::fclose(file_);
}

util::Status SnapshotWriter::WriteSection(SectionKind kind,
                                          const std::string& payload) {
  if (file_ == nullptr) {
    return util::Status::Internal("snapshot writer already finished");
  }
  long at = std::ftell(file_);
  if (at < 0) {
    return util::Status::IoError("cannot tell position in snapshot file");
  }
  const uint32_t crc = Crc32(payload);
  util::BinaryWriter header;
  header.PutU32(static_cast<uint32_t>(kind));
  header.PutU64(payload.size());
  header.PutU32(crc);
  WIKIMATCH_RETURN_NOT_OK(WriteAll(file_, header.buffer()));
  WIKIMATCH_RETURN_NOT_OK(WriteAll(file_, payload));
  ++section_count_;
  if (kind != SectionKind::kPad && kind != SectionKind::kDirectory) {
    sections_.push_back(SectionInfo{static_cast<uint32_t>(kind),
                                    static_cast<uint64_t>(at),
                                    payload.size(), crc});
  }
  return util::Status::OK();
}

util::Status SnapshotWriter::WriteCorpus(const wiki::Corpus& corpus) {
  util::BinaryWriter w;
  wiki::EncodeCorpus(corpus, &w);
  return WriteSection(SectionKind::kCorpus, w.buffer());
}

util::Status SnapshotWriter::WriteDictionary(
    const match::TranslationDictionary& dict) {
  util::BinaryWriter w;
  match::EncodeDictionary(dict, &w);
  return WriteSection(SectionKind::kDictionary, w.buffer());
}

util::Status SnapshotWriter::WritePipeline(
    const std::string& lang_a, const std::string& lang_b,
    const match::PipelineResult& result) {
  util::BinaryWriter w;
  w.PutString(lang_a);
  w.PutString(lang_b);
  match::EncodePipelineResult(result, &w);
  return WriteSection(SectionKind::kPipeline, w.buffer());
}

util::Status SnapshotWriter::WriteMeta(const SnapshotMeta& meta) {
  util::BinaryWriter w;
  w.PutU64(meta.generation);
  w.PutU64(meta.history.size());
  for (const auto& rec : meta.history) {
    w.PutU64(rec.generation);
    w.PutU64(rec.articles_added);
    w.PutU64(rec.articles_updated);
    w.PutU64(rec.articles_removed);
    w.PutU64(rec.units_reused);
    w.PutU64(rec.units_recomputed);
  }
  // Options fingerprint: trailing fields appended after the original
  // payload, so old readers (which stop after the history) never see them
  // and a meta section without a fingerprint keeps its original bytes — an
  // additive extension, no version bump. A present fingerprint starts with
  // a 1 flag byte; absence writes nothing at all.
  if (meta.options.has_value()) {
    const OptionsFingerprint& fp = *meta.options;
    w.PutU8(1);
    w.PutDouble(fp.t_sim);
    w.PutDouble(fp.t_lsi);
    w.PutDouble(fp.t_inductive);
    w.PutDouble(fp.t_revise_min_sim);
    w.PutDouble(fp.min_link_support);
    w.PutU64(fp.lsi_rank);
    w.PutDouble(fp.lsi_co_occur_tolerance);
    w.PutU8(fp.use_vsim ? 1 : 0);
    w.PutU8(fp.use_lsim ? 1 : 0);
    w.PutU8(fp.use_lsi ? 1 : 0);
    w.PutU8(fp.use_integrate_constraint ? 1 : 0);
    w.PutU8(fp.use_revise_uncertain ? 1 : 0);
    w.PutU8(fp.use_inductive_grouping ? 1 : 0);
    w.PutU8(fp.random_order ? 1 : 0);
    w.PutU8(fp.single_step ? 1 : 0);
    w.PutU64(fp.random_seed);
    w.PutU8(fp.keep_all_pairs ? 1 : 0);
    w.PutU8(fp.translate_values ? 1 : 0);
    w.PutU64(fp.schema_min_occurrences);
    w.PutU64(fp.schema_max_sample_infoboxes);
    w.PutU64(fp.type_min_votes);
    w.PutDouble(fp.type_min_confidence);
    // Trailing fingerprint extension (same tolerant-read pattern as the
    // fingerprint itself): older readers stop before it.
    w.PutU8(fp.use_exact_cosine ? 1 : 0);
  }
  return WriteSection(SectionKind::kMeta, w.buffer());
}

util::Status SnapshotWriter::WriteSyncReport(const sync::SyncReport& report) {
  return WriteSection(SectionKind::kSyncReport,
                      sync::EncodeSyncReport(report));
}

util::Status SnapshotWriter::Finish() {
  if (file_ == nullptr) {
    return util::Status::Internal("snapshot writer already finished");
  }
  if (!legacy_layout_) {
    // Pad section: sized so the directory *payload* (which follows the pad
    // payload plus one more 16-byte section header) starts 8-byte-aligned,
    // making its u64 entries readable in place from an mmap base.
    long at = std::ftell(file_);
    if (at < 0) {
      return util::Status::IoError("cannot tell position in snapshot file");
    }
    const uint64_t dir_payload_unpadded =
        static_cast<uint64_t>(at) + 2 * kSectionHeaderSize;
    const size_t pad = (8 - dir_payload_unpadded % 8) % 8;
    WIKIMATCH_RETURN_NOT_OK(
        WriteSection(SectionKind::kPad, std::string(pad, '\0')));

    long dir_at = std::ftell(file_);
    if (dir_at < 0) {
      return util::Status::IoError("cannot tell position in snapshot file");
    }
    util::BinaryWriter dir;
    dir.PutU64(sections_.size());
    for (const SectionInfo& s : sections_) {
      dir.PutU32(s.kind);
      dir.PutU32(0);  // reserved
      dir.PutU64(s.header_offset);
      dir.PutU64(s.payload_size);
      dir.PutU32(s.crc);
      dir.PutU32(0);  // reserved
    }
    WIKIMATCH_RETURN_NOT_OK(
        WriteSection(SectionKind::kDirectory, dir.buffer()));

    // Footer: trailing bytes the streaming reader never looks at (it reads
    // exactly section_count sections).
    util::BinaryWriter offset_bytes;
    offset_bytes.PutU64(static_cast<uint64_t>(dir_at));
    util::BinaryWriter footer;
    footer.PutU64(static_cast<uint64_t>(dir_at));
    footer.PutU32(Crc32(offset_bytes.buffer()));
    footer.PutU32(kSnapshotFooterMagic);
    WIKIMATCH_RETURN_NOT_OK(WriteAll(file_, footer.buffer()));
  }
  if (std::fseek(file_, 0, SEEK_SET) != 0) {
    return util::Status::IoError("cannot seek to snapshot header");
  }
  util::Status status = WriteAll(file_, EncodeHeader(section_count_));
  int close_rc = std::fclose(file_);
  file_ = nullptr;
  if (!status.ok()) return status;
  if (close_rc != 0) {
    return util::Status::IoError("error closing snapshot file");
  }
  return util::Status::OK();
}

util::Status WriteSnapshotFile(const Snapshot& snapshot,
                               const std::string& path, bool legacy_layout) {
  auto writer = SnapshotWriter::Open(path, legacy_layout);
  if (!writer.ok()) return writer.status();
  WIKIMATCH_RETURN_NOT_OK(writer->WriteCorpus(snapshot.corpus));
  WIKIMATCH_RETURN_NOT_OK(writer->WriteDictionary(snapshot.dictionary));
  for (const auto& [pair, result] : snapshot.pipelines) {
    WIKIMATCH_RETURN_NOT_OK(
        writer->WritePipeline(pair.first, pair.second, result));
  }
  // Generation-0 snapshots with no history omit the meta section so their
  // bytes match pre-meta writers (and old readers never see kind 4 at all
  // unless a delta was actually applied).
  if (!snapshot.meta.IsDefault()) {
    WIKIMATCH_RETURN_NOT_OK(writer->WriteMeta(snapshot.meta));
  }
  // Same additive pattern for the sync report (kind 5): omitted when no
  // sync has run, so such snapshots keep their pre-sync bytes.
  if (!snapshot.sync_report.empty()) {
    WIKIMATCH_RETURN_NOT_OK(writer->WriteSyncReport(snapshot.sync_report));
  }
  return writer->Finish();
}

util::Status DecodeSnapshotSection(SectionKind kind,
                                   std::string_view payload,
                                   Snapshot* snapshot) {
  util::BinaryReader pr(payload);
  switch (kind) {
    case SectionKind::kCorpus: {
      auto corpus = wiki::DecodeCorpus(&pr);
      if (!corpus.ok()) {
        return corpus.status().WithContext("snapshot corpus section");
      }
      snapshot->corpus = std::move(corpus).ValueOrDie();
      break;
    }
    case SectionKind::kDictionary: {
      auto dict = match::DecodeDictionary(&pr);
      if (!dict.ok()) {
        return dict.status().WithContext("snapshot dictionary section");
      }
      snapshot->dictionary = std::move(dict).ValueOrDie();
      break;
    }
    case SectionKind::kPipeline: {
      auto lang_a = pr.ReadString();
      if (!lang_a.ok()) return lang_a.status();
      auto lang_b = pr.ReadString();
      if (!lang_b.ok()) return lang_b.status();
      auto result = match::DecodePipelineResult(&pr);
      if (!result.ok()) {
        return result.status().WithContext("snapshot pipeline section " +
                                           *lang_a + ":" + *lang_b);
      }
      snapshot->pipelines.emplace(
          LanguagePair(std::move(lang_a).ValueOrDie(),
                       std::move(lang_b).ValueOrDie()),
          std::move(result).ValueOrDie());
      break;
    }
    case SectionKind::kMeta: {
      SnapshotMeta meta;
      auto gen = pr.ReadU64();
      if (!gen.ok()) {
        return gen.status().WithContext("snapshot meta section");
      }
      meta.generation = gen.ValueOrDie();
      auto count = pr.ReadU64();
      if (!count.ok()) {
        return count.status().WithContext("snapshot meta section");
      }
      for (uint64_t i = 0; i < count.ValueOrDie(); ++i) {
        DeltaRecord rec;
        uint64_t* fields[] = {&rec.generation,     &rec.articles_added,
                              &rec.articles_updated, &rec.articles_removed,
                              &rec.units_reused,   &rec.units_recomputed};
        for (uint64_t* field : fields) {
          auto v = pr.ReadU64();
          if (!v.ok()) {
            return v.status().WithContext("snapshot meta section");
          }
          *field = v.ValueOrDie();
        }
        meta.history.push_back(rec);
      }
      // Options fingerprint: optional trailing fields. Files from
      // writers that predate it simply end here (flag read fails on
      // exhausted payload → absent); a zero flag byte also means absent.
      if (auto flag = pr.ReadU8(); flag.ok() && flag.ValueOrDie() == 1) {
        OptionsFingerprint fp;
        auto rd = [&pr](double* out) {
          auto v = pr.ReadDouble();
          if (!v.ok()) return v.status();
          *out = v.ValueOrDie();
          return util::Status::OK();
        };
        auto ru = [&pr](uint64_t* out) {
          auto v = pr.ReadU64();
          if (!v.ok()) return v.status();
          *out = v.ValueOrDie();
          return util::Status::OK();
        };
        auto rb = [&pr](bool* out) {
          auto v = pr.ReadU8();
          if (!v.ok()) return v.status();
          *out = v.ValueOrDie() != 0;
          return util::Status::OK();
        };
        util::Status st = util::Status::OK();
        if (st.ok()) st = rd(&fp.t_sim);
        if (st.ok()) st = rd(&fp.t_lsi);
        if (st.ok()) st = rd(&fp.t_inductive);
        if (st.ok()) st = rd(&fp.t_revise_min_sim);
        if (st.ok()) st = rd(&fp.min_link_support);
        if (st.ok()) st = ru(&fp.lsi_rank);
        if (st.ok()) st = rd(&fp.lsi_co_occur_tolerance);
        if (st.ok()) st = rb(&fp.use_vsim);
        if (st.ok()) st = rb(&fp.use_lsim);
        if (st.ok()) st = rb(&fp.use_lsi);
        if (st.ok()) st = rb(&fp.use_integrate_constraint);
        if (st.ok()) st = rb(&fp.use_revise_uncertain);
        if (st.ok()) st = rb(&fp.use_inductive_grouping);
        if (st.ok()) st = rb(&fp.random_order);
        if (st.ok()) st = rb(&fp.single_step);
        if (st.ok()) st = ru(&fp.random_seed);
        if (st.ok()) st = rb(&fp.keep_all_pairs);
        if (st.ok()) st = rb(&fp.translate_values);
        if (st.ok()) st = ru(&fp.schema_min_occurrences);
        if (st.ok()) st = ru(&fp.schema_max_sample_infoboxes);
        if (st.ok()) st = ru(&fp.type_min_votes);
        if (st.ok()) st = rd(&fp.type_min_confidence);
        if (!st.ok()) {
          return st.WithContext("snapshot meta options fingerprint");
        }
        // use_exact_cosine rode in after the original fingerprint: files
        // written before it end exactly here and read back as true.
        if (auto v = pr.ReadU8(); v.ok()) {
          fp.use_exact_cosine = v.ValueOrDie() != 0;
        }
        meta.options = fp;
      }
      // Any further trailing bytes (fields appended by a newer writer)
      // are ignored.
      snapshot->meta = std::move(meta);
      break;
    }
    case SectionKind::kSyncReport: {
      auto report = sync::DecodeSyncReport(std::string(payload));
      if (!report.ok()) {
        return report.status().WithContext("snapshot sync report section");
      }
      snapshot->sync_report = std::move(report).ValueOrDie();
      break;
    }
    default:
      // Unknown kind within a supported version (and the pad/directory
      // sections, which carry no snapshot content): skip.
      break;
  }
  return util::Status::OK();
}

util::Result<Snapshot> ReadSnapshotFile(const std::string& path) {
  std::FILE* file = std::fopen(path.c_str(), "rb");
  if (file == nullptr) {
    return util::Status::IoError("cannot open snapshot " + path);
  }
  struct Closer {
    std::FILE* f;
    ~Closer() { std::fclose(f); }
  } closer{file};

  // File size, for validating section length fields before allocating.
  if (std::fseek(file, 0, SEEK_END) != 0) {
    return util::Status::IoError("cannot seek in snapshot " + path);
  }
  long file_size = std::ftell(file);
  if (file_size < 0) {
    return util::Status::IoError("cannot read size of snapshot " + path);
  }
  std::rewind(file);

  std::string header(kHeaderSize, '\0');
  if (std::fread(header.data(), 1, kHeaderSize, file) != kHeaderSize) {
    return util::Status::OutOfRange("truncated snapshot " + path +
                                    ": missing header");
  }
  util::BinaryReader hr(header);
  uint32_t magic = hr.ReadU32().ValueOrDie();
  uint32_t version = hr.ReadU32().ValueOrDie();
  uint32_t section_count = hr.ReadU32().ValueOrDie();
  if (magic != kSnapshotMagic) {
    return util::Status::ParseError(path + " is not a wikimatch snapshot "
                                    "(bad magic)");
  }
  if (version != kSnapshotVersion) {
    return util::Status::InvalidArgument(
        "unsupported snapshot version " + std::to_string(version) +
        " in " + path + " (this build reads version " +
        std::to_string(kSnapshotVersion) + ")");
  }
  if (section_count == 0) {
    return util::Status::ParseError("snapshot " + path +
                                    " is incomplete (zero sections; "
                                    "build-snapshot did not finish)");
  }

  Snapshot snapshot;
  bool have_corpus = false;
  bool have_dictionary = false;
  size_t bytes_left = static_cast<size_t>(file_size) - kHeaderSize;
  for (uint32_t s = 0; s < section_count; ++s) {
    std::string section_header(kSectionHeaderSize, '\0');
    if (bytes_left < kSectionHeaderSize ||
        std::fread(section_header.data(), 1, kSectionHeaderSize, file) !=
            kSectionHeaderSize) {
      return util::Status::OutOfRange(
          "truncated snapshot " + path + ": section " + std::to_string(s) +
          " header missing");
    }
    bytes_left -= kSectionHeaderSize;
    util::BinaryReader sr(section_header);
    uint32_t kind = sr.ReadU32().ValueOrDie();
    uint64_t payload_size = sr.ReadU64().ValueOrDie();
    uint32_t expected_crc = sr.ReadU32().ValueOrDie();
    if (payload_size > bytes_left) {
      return util::Status::OutOfRange(
          "truncated snapshot " + path + ": section " + std::to_string(s) +
          " claims " + std::to_string(payload_size) + " bytes but only " +
          std::to_string(bytes_left) + " remain");
    }
    std::string payload(payload_size, '\0');
    if (payload_size > 0 &&
        std::fread(payload.data(), 1, payload_size, file) != payload_size) {
      return util::Status::OutOfRange("truncated snapshot " + path +
                                      ": section " + std::to_string(s) +
                                      " payload short");
    }
    bytes_left -= payload_size;
    uint32_t actual_crc = Crc32(payload);
    if (actual_crc != expected_crc) {
      return util::Status::ParseError(
          "corrupt snapshot " + path + ": CRC mismatch in section " +
          std::to_string(s) + " (kind " + std::to_string(kind) + ")");
    }

    SectionKind k = static_cast<SectionKind>(kind);
    util::Status st = DecodeSnapshotSection(k, payload, &snapshot);
    if (!st.ok()) return st;
    if (k == SectionKind::kCorpus) have_corpus = true;
    if (k == SectionKind::kDictionary) have_dictionary = true;
  }
  if (!have_corpus || !have_dictionary) {
    return util::Status::ParseError("snapshot " + path +
                                    " lacks a corpus or dictionary section");
  }
  return snapshot;
}

}  // namespace store
}  // namespace wikimatch
