// Bouma et al. baseline (CLIAWS3 2009; paper Section 4.1 / [5]):
// cross-lingual infobox alignment by matching attribute-value pairs. Two
// values match when they are identical, or when they carry links whose
// landing articles are joined by a cross-language link. An attribute pair
// is aligned when its values match in enough dual infoboxes — a
// high-precision, recall-limited strategy.

#ifndef WIKIMATCH_BASELINES_BOUMA_MATCHER_H_
#define WIKIMATCH_BASELINES_BOUMA_MATCHER_H_

#include "eval/match_set.h"
#include "match/dictionary.h"
#include "util/result.h"
#include "wiki/corpus.h"

namespace wikimatch {
namespace baselines {

/// \brief Configuration of the Bouma baseline.
struct BoumaMatcherConfig {
  /// Minimum number of dual infoboxes where the pair's values match.
  size_t min_votes = 2;
  /// Minimum fraction of the pair's co-present dual infoboxes with
  /// matching values.
  double min_agreement = 0.25;
};

/// \brief Result of the Bouma baseline on one type pair.
struct BoumaResult {
  eval::MatchSet matches{/*transitive=*/false};
};

/// \brief Runs the Bouma alignment over the dual infoboxes of
/// (lang_a, type_a) x (lang_b, type_b).
util::Result<BoumaResult> RunBoumaMatcher(const wiki::Corpus& corpus,
                                          const std::string& lang_a,
                                          const std::string& type_a,
                                          const std::string& lang_b,
                                          const std::string& type_b,
                                          const BoumaMatcherConfig& config
                                          = {});

}  // namespace baselines
}  // namespace wikimatch

#endif  // WIKIMATCH_BASELINES_BOUMA_MATCHER_H_
