// LSI-only baseline (Section 4.1 / Figure 6): align each lang_a attribute
// with its top-k LSI-scoring lang_b attributes, no other evidence.

#ifndef WIKIMATCH_BASELINES_LSI_MATCHER_H_
#define WIKIMATCH_BASELINES_LSI_MATCHER_H_

#include "eval/match_set.h"
#include "match/lsi.h"
#include "match/schema_builder.h"
#include "util/result.h"

namespace wikimatch {
namespace baselines {

/// \brief Configuration for the LSI-only matcher.
struct LsiMatcherConfig {
  /// Keep the top-k scoring lang_b candidates per lang_a attribute.
  size_t top_k = 1;
  match::LsiOptions lsi;
};

/// \brief Output: matches plus the full ranking (for MAP studies).
struct LsiMatcherResult {
  eval::MatchSet matches{/*transitive=*/false};
  /// Cross-language pairs ranked by LSI score, best first.
  std::vector<std::pair<eval::AttrKey, eval::AttrKey>> ranking;
};

/// \brief Runs the LSI baseline over one type pair.
util::Result<LsiMatcherResult> RunLsiMatcher(
    const match::TypePairData& data, const LsiMatcherConfig& config = {});

}  // namespace baselines
}  // namespace wikimatch

#endif  // WIKIMATCH_BASELINES_LSI_MATCHER_H_
