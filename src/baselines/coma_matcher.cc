#include "baselines/coma_matcher.h"

#include <algorithm>

#include "match/aligner.h"
#include "text/normalize.h"
#include "text/string_similarity.h"

namespace wikimatch {
namespace baselines {

double ComaNameSimilarity(const std::string& name_a,
                          const std::string& name_b) {
  std::string a = text::FoldDiacritics(name_a);
  std::string b = text::FoldDiacritics(name_b);
  return 0.5 * (text::TrigramSimilarity(a, b) +
                text::JaroWinklerSimilarity(a, b));
}

namespace {

// Profile of an attribute: its top value components by frequency, sorted
// for stability, space-joined; plus the fraction of numeric components.
struct InstanceProfile {
  std::string text;
  double numeric_share = 0.0;
};

InstanceProfile ProfileOf(const match::TypePairData& data,
                          const match::AttributeGroup& g,
                          size_t top_terms = 10) {
  std::vector<std::pair<double, uint32_t>> ranked;
  double total = 0.0;
  double numeric = 0.0;
  for (const auto& [id, weight] : g.values.entries()) {
    ranked.emplace_back(weight, id);
    total += weight;
    const std::string& term = data.value_terms.TermOf(id);
    if (!term.empty() && term[0] >= '0' && term[0] <= '9') numeric += weight;
  }
  std::sort(ranked.begin(), ranked.end(), [](const auto& x, const auto& y) {
    if (x.first != y.first) return x.first > y.first;
    return x.second < y.second;
  });
  if (ranked.size() > top_terms) ranked.resize(top_terms);
  std::vector<std::string> terms;
  for (const auto& [weight, id] : ranked) {
    terms.push_back(data.value_terms.TermOf(id));
  }
  std::sort(terms.begin(), terms.end());
  InstanceProfile out;
  for (const auto& t : terms) {
    if (!out.text.empty()) out.text += " ";
    out.text += t;
  }
  out.numeric_share = total > 0.0 ? numeric / total : 0.0;
  return out;
}

}  // namespace

double ComaInstanceSimilarity(const match::TypePairData& data,
                              const match::AttributeGroup& a,
                              const match::AttributeGroup& b) {
  InstanceProfile pa = ProfileOf(data, a);
  InstanceProfile pb = ProfileOf(data, b);
  double text_sim = text::TrigramSimilarity(pa.text, pb.text);
  double numeric_sim = 1.0 - std::abs(pa.numeric_share - pb.numeric_share);
  return 0.7 * text_sim + 0.3 * numeric_sim;
}

util::Result<ComaResult> RunComaMatcher(
    const match::TypePairData& data, const ComaConfig& config,
    const NameTranslations& name_translations) {
  if (!config.use_name && !config.use_instance) {
    return util::Status::InvalidArgument(
        "COMA needs at least one matcher enabled");
  }

  // Indexes of each side's groups.
  std::vector<size_t> side_a;
  std::vector<size_t> side_b;
  for (size_t i = 0; i < data.groups.size(); ++i) {
    if (data.groups[i].key.language == data.lang_a) {
      side_a.push_back(i);
    } else {
      side_b.push_back(i);
    }
  }

  // Full similarity matrix.
  std::map<std::pair<size_t, size_t>, double> sim_matrix;
  std::map<size_t, double> best_of;  // per group, its best score
  for (size_t ia : side_a) {
    const auto& ga = data.groups[ia];
    std::string name_a = ga.key.name;
    if (config.translate_names) {
      auto it = name_translations.find({data.lang_a, name_a});
      if (it != name_translations.end()) name_a = it->second;
    }
    for (size_t ib : side_b) {
      const auto& gb = data.groups[ib];
      // COMA's default aggregation averages the enabled matchers' scores —
      // which is exactly why the paper sees the name matcher's high scores
      // drown the more reliable instance scores in combined configurations.
      double sim = 0.0;
      double matchers = 0.0;
      if (config.use_name) {
        sim += ComaNameSimilarity(name_a, gb.key.name);
        matchers += 1.0;
      }
      if (config.use_instance) {
        sim += ComaInstanceSimilarity(data, ga, gb);
        matchers += 1.0;
      }
      sim /= matchers;
      sim_matrix[{ia, ib}] = sim;
      best_of[ia] = std::max(best_of[ia], sim);
      best_of[ib] = std::max(best_of[ib], sim);
    }
  }

  ComaResult out;
  for (const auto& [key, sim] : sim_matrix) {
    if (sim < config.threshold) continue;
    bool best_for_a = sim >= best_of[key.first] - config.tie_tolerance;
    bool best_for_b = sim >= best_of[key.second] - config.tie_tolerance;
    bool selected = config.require_reciprocal ? (best_for_a && best_for_b)
                                              : best_for_a;
    if (selected) {
      out.matches.AddPair(data.groups[key.first].key,
                          data.groups[key.second].key);
    }
  }
  return out;
}

}  // namespace baselines
}  // namespace wikimatch
