// Alternative attribute-correlation measures (paper Appendix B, Table 7):
// candidate-pair orderings by X1, X2, X3 co-occurrence statistics, by LSI,
// and by a random baseline, evaluated with MAP.
//
//   X1 = Opq
//   X2 = (1 + Opq/Op)(1 + Opq/Oq)
//   X3 = Opq * Opq / (Op + Oq)
//
// where Op, Oq are attribute occurrence counts and Opq the co-occurrence
// count in the dual-language infoboxes of the type.

#ifndef WIKIMATCH_BASELINES_CORRELATION_MEASURES_H_
#define WIKIMATCH_BASELINES_CORRELATION_MEASURES_H_

#include <string>
#include <vector>

#include "eval/match_set.h"
#include "match/schema_builder.h"
#include "util/result.h"

namespace wikimatch {
namespace baselines {

/// \brief Which correlation measure orders the candidates.
enum class CorrelationMeasure { kLsi, kX1, kX2, kX3, kRandom };

/// \brief Human-readable name ("LSI", "X1", ...).
const char* CorrelationMeasureName(CorrelationMeasure measure);

/// \brief Ranks all cross-language candidate pairs of `data` by `measure`,
/// best first. The random baseline is deterministic in `seed`.
///
/// Co-occurrence for X1..X3 is counted over dual-language infoboxes: Opq is
/// the number of dual infoboxes containing attribute p on its side and q on
/// the other side.
util::Result<std::vector<std::pair<eval::AttrKey, eval::AttrKey>>>
RankCandidates(const match::TypePairData& data, CorrelationMeasure measure,
               uint64_t seed = 0xC0FFEE);

}  // namespace baselines
}  // namespace wikimatch

#endif  // WIKIMATCH_BASELINES_CORRELATION_MEASURES_H_
