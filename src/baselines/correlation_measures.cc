#include "baselines/correlation_measures.h"

#include <algorithm>

#include "match/lsi.h"
#include "util/rng.h"

namespace wikimatch {
namespace baselines {

const char* CorrelationMeasureName(CorrelationMeasure measure) {
  switch (measure) {
    case CorrelationMeasure::kLsi:
      return "LSI";
    case CorrelationMeasure::kX1:
      return "X1";
    case CorrelationMeasure::kX2:
      return "X2";
    case CorrelationMeasure::kX3:
      return "X3";
    case CorrelationMeasure::kRandom:
      return "Random";
  }
  return "?";
}

util::Result<std::vector<std::pair<eval::AttrKey, eval::AttrKey>>>
RankCandidates(const match::TypePairData& data, CorrelationMeasure measure,
               uint64_t seed) {
  std::vector<size_t> side_a;
  std::vector<size_t> side_b;
  for (size_t i = 0; i < data.groups.size(); ++i) {
    (data.groups[i].key.language == data.lang_a ? side_a : side_b)
        .push_back(i);
  }

  match::LsiCorrelation lsi;
  if (measure == CorrelationMeasure::kLsi) {
    WIKIMATCH_ASSIGN_OR_RETURN(lsi, match::LsiCorrelation::Compute(data));
  }

  struct Scored {
    size_t i;
    size_t j;
    double score;
  };
  std::vector<Scored> scored;
  util::Rng rng(seed);
  for (size_t ia : side_a) {
    const auto& ga = data.groups[ia];
    for (size_t ib : side_b) {
      const auto& gb = data.groups[ib];
      // Dual-infobox co-occurrence: attribute p on one side, q on the other.
      double opq = 0.0;
      for (uint32_t doc : ga.dual_docs) {
        if (gb.dual_docs.count(doc) > 0) opq += 1.0;
      }
      double op = ga.occurrences;
      double oq = gb.occurrences;
      double score = 0.0;
      switch (measure) {
        case CorrelationMeasure::kLsi:
          score = lsi.Score(ia, ib);
          break;
        case CorrelationMeasure::kX1:
          score = opq;
          break;
        case CorrelationMeasure::kX2:
          score = (op > 0.0 && oq > 0.0)
                      ? (1.0 + opq / op) * (1.0 + opq / oq)
                      : 0.0;
          break;
        case CorrelationMeasure::kX3:
          score = (op + oq) > 0.0 ? opq * opq / (op + oq) : 0.0;
          break;
        case CorrelationMeasure::kRandom:
          score = rng.NextDouble();
          break;
      }
      scored.push_back({ia, ib, score});
    }
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& x, const Scored& y) {
                     return x.score > y.score;
                   });
  std::vector<std::pair<eval::AttrKey, eval::AttrKey>> out;
  out.reserve(scored.size());
  for (const auto& s : scored) {
    out.emplace_back(data.groups[s.i].key, data.groups[s.j].key);
  }
  return out;
}

}  // namespace baselines
}  // namespace wikimatch
