#include "baselines/ziggurat.h"

#include <algorithm>
#include <cmath>

#include "match/aligner.h"
#include "text/normalize.h"
#include "text/string_similarity.h"
#include "util/rng.h"

namespace wikimatch {
namespace baselines {

namespace {

// Fraction of a group's value mass that is numeric components.
double NumericShare(const match::TypePairData& data,
                    const match::AttributeGroup& g) {
  double total = 0.0;
  double numeric = 0.0;
  for (const auto& [id, w] : g.values.entries()) {
    total += w;
    const std::string& term = data.value_terms.TermOf(id);
    if (!term.empty() && term[0] >= '0' && term[0] <= '9') numeric += w;
  }
  return total > 0.0 ? numeric / total : 0.0;
}

// Jaccard over the supports of two sparse vectors.
double SupportJaccard(const la::SparseVector& a, const la::SparseVector& b) {
  if (a.empty() && b.empty()) return 0.0;
  size_t inter = 0;
  for (const auto& [id, w] : a.entries()) {
    if (b.Get(id) > 0.0) ++inter;
  }
  size_t uni = a.NumNonZero() + b.NumNonZero() - inter;
  return uni == 0 ? 0.0 : static_cast<double>(inter) / uni;
}

}  // namespace

ZigguratMatcher::ZigguratMatcher(ZigguratConfig config)
    : config_(std::move(config)) {}

std::vector<double> ZigguratMatcher::Features(
    const match::TypePairData& data, const match::AttributeGroup& a,
    const match::AttributeGroup& b) {
  std::string name_a = text::FoldDiacritics(a.key.name);
  std::string name_b = text::FoldDiacritics(b.key.name);

  double vsim = match::AttributeAligner::ValueSimilarity(a, b);
  double lsim = match::AttributeAligner::LinkSimilarity(a, b);

  double occ_a = std::max(a.occurrences, 1.0);
  double occ_b = std::max(b.occurrences, 1.0);
  double co = 0.0;
  for (uint32_t doc : a.dual_docs) {
    if (b.dual_docs.count(doc) > 0) co += 1.0;
  }

  size_t words_a = 1 + std::count(name_a.begin(), name_a.end(), ' ');
  size_t words_b = 1 + std::count(name_b.begin(), name_b.end(), ' ');

  double mass_a = std::max(a.values.Sum(), 1.0);
  double mass_b = std::max(b.values.Sum(), 1.0);

  return {
      // Name syntactic features (the original's n-gram block).
      text::TrigramSimilarity(name_a, name_b),
      text::NgramJaccard(name_a, name_b, 2),
      text::JaroWinklerSimilarity(name_a, name_b),
      text::LevenshteinSimilarity(name_a, name_b),
      static_cast<double>(text::CommonPrefixLength(name_a, name_b)) /
          std::max<double>(1.0, std::min(name_a.size(), name_b.size())),
      name_a == name_b ? 1.0 : 0.0,
      std::fabs(static_cast<double>(words_a) - static_cast<double>(words_b)),
      // Value features.
      vsim,
      SupportJaccard(a.values, b.values),
      std::fabs(NumericShare(data, a) - NumericShare(data, b)),
      std::fabs(std::log(mass_a / occ_a) - std::log(mass_b / occ_b)),
      // Link features.
      lsim,
      // Occurrence statistics.
      std::min(occ_a, occ_b) / std::max(occ_a, occ_b),
      co / std::min(occ_a, occ_b),
  };
}

util::Status ZigguratMatcher::Train(
    const std::vector<const match::TypePairData*>& types) {
  std::vector<la::LabeledExample> examples;
  util::Rng rng(config_.seed);
  num_positives_ = 0;
  num_negatives_ = 0;

  std::vector<la::LabeledExample> negatives;
  for (const match::TypePairData* data : types) {
    for (size_t i = 0; i < data->groups.size(); ++i) {
      const auto& ga = data->groups[i];
      if (ga.key.language != data->lang_a) continue;
      for (size_t j = 0; j < data->groups.size(); ++j) {
        const auto& gb = data->groups[j];
        if (gb.key.language != data->lang_b) continue;
        double vsim = match::AttributeAligner::ValueSimilarity(ga, gb);
        double lsim = match::AttributeAligner::LinkSimilarity(ga, gb);
        bool names_equal = text::FoldDiacritics(ga.key.name) ==
                           text::FoldDiacritics(gb.key.name);
        bool positive = names_equal ||
                        std::max(vsim, lsim) > config_.positive_value_cosine;
        bool negative = !positive && vsim < config_.negative_value_cosine &&
                        rng.NextBool(0.5);
        if (positive && num_positives_ < config_.max_positives) {
          examples.push_back({Features(*data, ga, gb), true});
          ++num_positives_;
        } else if (negative && negatives.size() < config_.max_negatives) {
          negatives.push_back({Features(*data, ga, gb), false});
        }
      }
    }
  }
  if (examples.empty()) {
    return util::Status::NotFound("heuristics found no training examples");
  }
  // Keep the classes balanced (at most 2 negatives per positive).
  rng.Shuffle(&negatives);
  num_negatives_ = std::min(negatives.size(), 2 * num_positives_);
  for (size_t k = 0; k < num_negatives_; ++k) {
    examples.push_back(std::move(negatives[k]));
  }
  return model_.Train(examples, config_.training)
      .WithContext("ziggurat training");
}

double ZigguratMatcher::Score(const match::TypePairData& data,
                              const match::AttributeGroup& a,
                              const match::AttributeGroup& b) const {
  return model_.Predict(Features(data, a, b));
}

util::Result<eval::MatchSet> ZigguratMatcher::Match(
    const match::TypePairData& data) const {
  if (!model_.trained()) {
    return util::Status::Internal("ziggurat matcher is not trained");
  }
  eval::MatchSet matches(/*transitive=*/false);

  std::vector<size_t> side_a;
  std::vector<size_t> side_b;
  for (size_t i = 0; i < data.groups.size(); ++i) {
    (data.groups[i].key.language == data.lang_a ? side_a : side_b)
        .push_back(i);
  }
  std::map<std::pair<size_t, size_t>, double> scores;
  std::map<size_t, double> best;
  for (size_t i : side_a) {
    for (size_t j : side_b) {
      double p = Score(data, data.groups[i], data.groups[j]);
      scores[{i, j}] = p;
      best[i] = std::max(best[i], p);
      best[j] = std::max(best[j], p);
    }
  }
  for (const auto& [key, p] : scores) {
    if (p < config_.select_threshold) continue;
    if (config_.reciprocal &&
        (p < best[key.first] || p < best[key.second])) {
      continue;
    }
    matches.AddPair(data.groups[key.first].key, data.groups[key.second].key);
  }
  return matches;
}

}  // namespace baselines
}  // namespace wikimatch
