// COMA++-style schema matching baseline (paper Section 4.1 / Figure 7 /
// [3]): name-based and instance-based matchers with optional translation of
// attribute names (machine translation) and values (the auto-derived
// dictionary), combined per attribute and selected with the Multiple(0,0,0)
// strategy plus a threshold δ.

#ifndef WIKIMATCH_BASELINES_COMA_MATCHER_H_
#define WIKIMATCH_BASELINES_COMA_MATCHER_H_

#include <map>
#include <string>

#include "eval/match_set.h"
#include "match/schema_builder.h"
#include "util/result.h"

namespace wikimatch {
namespace baselines {

/// \brief Attribute-name translation table for the name matcher
/// (lang, attribute name) -> translated name. The synthetic MT oracle
/// (synth/mt_oracle.h) and the auto dictionary both produce this form.
using NameTranslations = std::map<std::pair<std::string, std::string>,
                                  std::string>;

/// \brief One COMA++ configuration (the paper's N / I / NI / N+G / I+D /
/// NG+ID variants are combinations of these switches).
struct ComaConfig {
  /// Enable the name matcher (string similarity over attribute labels).
  bool use_name = true;
  /// Enable the instance matcher (cosine over value vectors). The caller
  /// controls value translation (the +D of I+D) by how it builds the
  /// TypePairData (SchemaBuilderOptions::translate_values).
  bool use_instance = false;
  /// Translate lang_a attribute names through `name_translations` before
  /// the name matcher runs (the +G / +D of the name matcher).
  bool translate_names = false;
  /// Selection threshold δ (paper's best: 0.01).
  double threshold = 0.01;
  /// Multiple(0,0,0): candidates within this tolerance of an attribute's
  /// best score are all selected.
  double tie_tolerance = 0.0;
  /// COMA++'s both-directions selection: a correspondence survives only if
  /// each side is (within tolerance of) the other's best candidate.
  bool require_reciprocal = true;
};

/// \brief Result of one COMA++ run.
struct ComaResult {
  eval::MatchSet matches{/*transitive=*/false};
};

/// \brief Name similarity used by the name matcher: mean of trigram Dice
/// and Jaro-Winkler over lowercased, diacritics-folded names. Exposed for
/// tests.
double ComaNameSimilarity(const std::string& name_a,
                          const std::string& name_b);

/// \brief Instance similarity in COMA++'s style: each attribute is reduced
/// to a profile of its most frequent value components plus a numeric-share
/// feature, compared by character-trigram similarity — not a corpus-wide
/// term-vector cosine (that is WikiMatch's vsim, which COMA++ does not
/// have). Exposed for tests.
double ComaInstanceSimilarity(const match::TypePairData& data,
                              const match::AttributeGroup& a,
                              const match::AttributeGroup& b);

/// \brief Runs COMA++ over one type pair.
///
/// `name_translations` may be empty when translate_names is false.
util::Result<ComaResult> RunComaMatcher(
    const match::TypePairData& data, const ComaConfig& config,
    const NameTranslations& name_translations = {});

}  // namespace baselines
}  // namespace wikimatch

#endif  // WIKIMATCH_BASELINES_COMA_MATCHER_H_
