#include "baselines/lsi_matcher.h"

#include <algorithm>

namespace wikimatch {
namespace baselines {

util::Result<LsiMatcherResult> RunLsiMatcher(const match::TypePairData& data,
                                             const LsiMatcherConfig& config) {
  LsiMatcherResult out;
  WIKIMATCH_ASSIGN_OR_RETURN(
      match::LsiCorrelation lsi,
      match::LsiCorrelation::Compute(data, config.lsi));

  // Global ranking of cross-language pairs, best first.
  struct Scored {
    size_t i;
    size_t j;
    double score;
  };
  std::vector<Scored> scored;
  for (size_t i = 0; i < data.groups.size(); ++i) {
    if (data.groups[i].key.language != data.lang_a) continue;
    for (size_t j = 0; j < data.groups.size(); ++j) {
      if (data.groups[j].key.language != data.lang_b) continue;
      scored.push_back({i, j, lsi.Score(i, j)});
    }
  }
  std::stable_sort(scored.begin(), scored.end(),
                   [](const Scored& x, const Scored& y) {
                     return x.score > y.score;
                   });
  for (const auto& s : scored) {
    out.ranking.emplace_back(data.groups[s.i].key, data.groups[s.j].key);
  }

  // Top-k per lang_a attribute.
  std::map<size_t, size_t> taken;
  for (const auto& s : scored) {
    if (s.score <= 0.0) continue;
    if (taken[s.i] >= config.top_k) continue;
    taken[s.i]++;
    out.matches.AddPair(data.groups[s.i].key, data.groups[s.j].key);
  }
  return out;
}

}  // namespace baselines
}  // namespace wikimatch
