#include "baselines/bouma_matcher.h"

#include <map>

#include "text/normalize.h"

namespace wikimatch {
namespace baselines {

namespace {

// True when values v_a (in lang_a) and v_b (in lang_b) match per Bouma:
// identical normalized text, or any pair of their links lands on articles
// joined by a cross-language link.
bool ValuesMatch(const wiki::Corpus& corpus, const wiki::AttributeValue& va,
                 const std::string& lang_a, const wiki::AttributeValue& vb,
                 const std::string& lang_b) {
  std::string ta = text::NormalizeValue(va.text);
  std::string tb = text::NormalizeValue(vb.text);
  if (!ta.empty() && ta == tb) return true;
  for (const auto& la : va.links) {
    wiki::ArticleId ida = corpus.FindByTitle(lang_a, la.target);
    if (ida == wiki::kInvalidArticle) continue;
    for (const auto& lb : vb.links) {
      wiki::ArticleId idb = corpus.FindByTitle(lang_b, lb.target);
      if (idb == wiki::kInvalidArticle) continue;
      if (corpus.SameEntity(ida, idb)) return true;
    }
  }
  return false;
}

}  // namespace

util::Result<BoumaResult> RunBoumaMatcher(const wiki::Corpus& corpus,
                                          const std::string& lang_a,
                                          const std::string& type_a,
                                          const std::string& lang_b,
                                          const std::string& type_b,
                                          const BoumaMatcherConfig& config) {
  // votes[pair] = dual infoboxes with matching values;
  // copresent[pair] = dual infoboxes containing both attributes.
  std::map<std::pair<std::string, std::string>, size_t> votes;
  std::map<std::pair<std::string, std::string>, size_t> copresent;

  size_t num_duals = 0;
  for (wiki::ArticleId id : corpus.ArticlesOfType(lang_a, type_a)) {
    wiki::ArticleId other = corpus.CrossLanguageTarget(id, lang_b);
    if (other == wiki::kInvalidArticle) continue;
    const wiki::Article& b_article = corpus.Get(other);
    if (!b_article.infobox.has_value() || b_article.entity_type != type_b) {
      continue;
    }
    ++num_duals;
    const wiki::Infobox& box_a = corpus.Get(id).infobox.value();
    const wiki::Infobox& box_b = b_article.infobox.value();
    for (const auto& [attr_a, value_a] : box_a.attributes) {
      for (const auto& [attr_b, value_b] : box_b.attributes) {
        auto key = std::make_pair(attr_a, attr_b);
        copresent[key]++;
        if (ValuesMatch(corpus, value_a, lang_a, value_b, lang_b)) {
          votes[key]++;
        }
      }
    }
  }
  if (num_duals == 0) {
    return util::Status::NotFound("no dual infoboxes for Bouma baseline");
  }

  BoumaResult out;
  for (const auto& [key, n_votes] : votes) {
    size_t n_co = copresent[key];
    if (n_votes < config.min_votes) continue;
    if (static_cast<double>(n_votes) <
        config.min_agreement * static_cast<double>(n_co)) {
      continue;
    }
    out.matches.AddPair(eval::AttrKey{lang_a, key.first},
                        eval::AttrKey{lang_b, key.second});
  }
  return out;
}

}  // namespace baselines
}  // namespace wikimatch
