// Ziggurat-style baseline (Adar, Skinner, Weld — WSDM 2009): a
// self-supervised classifier over cross-language attribute pairs. The
// paper compares against it only qualitatively ("we were not able to
// obtain the code or the datasets"); this reimplementation follows the
// published description: a feature vector per pair (name n-gram and edit
// similarities, value equality/overlap features, link features), training
// examples selected *heuristically* (no human labels — pairs with equal
// names or near-identical values are positives, low-evidence random pairs
// negatives), and a logistic classifier applied to all pairs.
//
// Its documented weakness — reliance on syntactic similarity limits it to
// languages with similar roots — falls out naturally: half the features
// are string similarities over attribute names, which carry no signal for
// Vietnamese-English.

#ifndef WIKIMATCH_BASELINES_ZIGGURAT_H_
#define WIKIMATCH_BASELINES_ZIGGURAT_H_

#include <vector>

#include "eval/match_set.h"
#include "la/logistic.h"
#include "match/schema_builder.h"
#include "util/result.h"

namespace wikimatch {
namespace baselines {

/// \brief Ziggurat configuration.
struct ZigguratConfig {
  /// Self-supervision heuristics: a pair is a positive example when its
  /// folded names are equal or its raw value cosine exceeds this...
  double positive_value_cosine = 0.75;
  /// ...and a negative example when the value cosine is below this.
  double negative_value_cosine = 0.05;
  /// Cap on harvested examples (the original used 20k/40k).
  size_t max_positives = 20000;
  size_t max_negatives = 40000;
  /// Classification threshold on P(match).
  double select_threshold = 0.5;
  /// Keep mutual-best pairs only.
  bool reciprocal = true;
  la::LogisticOptions training;
  uint64_t seed = 0x216;
};

/// \brief Trained-classifier matcher. Train() once over any set of type
/// pairs (Ziggurat is cross-domain), then Match() per type pair.
class ZigguratMatcher {
 public:
  explicit ZigguratMatcher(ZigguratConfig config = {});

  /// \brief Harvests heuristic examples from the given type pairs and
  /// trains the classifier. Fails if the heuristics find only one class.
  util::Status Train(const std::vector<const match::TypePairData*>& types);

  /// \brief Classifies every cross-language pair of `data`.
  util::Result<eval::MatchSet> Match(const match::TypePairData& data) const;

  /// \brief P(match) for one pair; exposed for tests.
  double Score(const match::TypePairData& data,
               const match::AttributeGroup& a,
               const match::AttributeGroup& b) const;

  /// \brief The feature vector (14 features; the original used 26).
  static std::vector<double> Features(const match::TypePairData& data,
                                      const match::AttributeGroup& a,
                                      const match::AttributeGroup& b);

  bool trained() const { return model_.trained(); }
  size_t num_positives() const { return num_positives_; }
  size_t num_negatives() const { return num_negatives_; }

 private:
  ZigguratConfig config_;
  la::LogisticRegression model_;
  size_t num_positives_ = 0;
  size_t num_negatives_ = 0;
};

}  // namespace baselines
}  // namespace wikimatch

#endif  // WIKIMATCH_BASELINES_ZIGGURAT_H_
